#ifndef LIFTING_COMMON_UNIQUE_FUNCTION_HPP
#define LIFTING_COMMON_UNIQUE_FUNCTION_HPP

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

/// A move-only callable wrapper with small-buffer optimization.
///
/// The event queue stores closures that capture move-only state (e.g.
/// messages being delivered); std::function requires copyability and
/// std::move_only_function is C++23. Unlike the std types, this one keeps
/// small closures inline: the simulator schedules millions of events per
/// simulated second and a heap allocation per event caps throughput. Every
/// closure on the hot path (engine timers, pooled network deliveries)
/// captures at most a pointer and a couple of words, so the inline buffer
/// makes the steady-state schedule/dispatch cycle allocation-free, and —
/// since such captures are trivially copyable — moves reduce to a plain
/// buffer copy with no indirect call. Larger or alignment-exotic callables
/// transparently fall back to the heap.

namespace lifting {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Inline storage: enough for a capture of [this + two words], which
  /// covers every closure the simulator schedules in steady state. Kept
  /// small on purpose — event-queue entries embed this type and their cache
  /// footprint bounds simulator throughput.
  static constexpr std::size_t kInlineSize = 24;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  UniqueFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    LIFTING_ASSERT(ops_ != nullptr, "calling empty UniqueFunction");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  /// Type-erased operation table. `relocate == nullptr` means the stored
  /// representation is trivially relocatable (a trivially copyable inline
  /// object, or the heap fallback's raw pointer) and moves are a plain
  /// buffer copy. `destroy == nullptr` means destruction is a no-op.
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps{
      +[](void* storage, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(storage)))(
            std::forward<Args>(args)...);
      },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              D* obj = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*obj));
              obj->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* storage) noexcept {
              std::launder(reinterpret_cast<D*>(storage))->~D();
            },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      +[](void* storage, Args&&... args) -> R {
        return (**reinterpret_cast<D**>(storage))(std::forward<Args>(args)...);
      },
      nullptr,  // the owning pointer relocates by buffer copy
      +[](void* storage) noexcept { delete *reinterpret_cast<D**>(storage); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void steal(UniqueFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        std::memcpy(storage_, other.storage_, kInlineSize);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace lifting

#endif  // LIFTING_COMMON_UNIQUE_FUNCTION_HPP

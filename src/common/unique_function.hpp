#ifndef LIFTING_COMMON_UNIQUE_FUNCTION_HPP
#define LIFTING_COMMON_UNIQUE_FUNCTION_HPP

#include <memory>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

/// A move-only callable wrapper.
///
/// The event queue stores closures that capture move-only state (e.g.
/// messages being delivered); std::function requires copyability and
/// std::move_only_function is C++23. This is the minimal, allocation-based
/// equivalent (events are heap-scheduled anyway, so the allocation is not on
/// any hot path that matters beyond the queue itself).

namespace lifting {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor): mirrors std::function
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;
  ~UniqueFunction() = default;

  [[nodiscard]] explicit operator bool() const noexcept {
    return impl_ != nullptr;
  }

  R operator()(Args... args) {
    LIFTING_ASSERT(impl_ != nullptr, "calling empty UniqueFunction");
    return impl_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args... args) = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R invoke(Args... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace lifting

#endif  // LIFTING_COMMON_UNIQUE_FUNCTION_HPP

#ifndef LIFTING_COMMON_TYPES_HPP
#define LIFTING_COMMON_TYPES_HPP

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

/// Strongly-typed identifiers used throughout the library.
///
/// The C++ Core Guidelines (P.1, I.4) favor precise, strongly-typed
/// interfaces: a NodeId is not a ChunkId is not a period index, and mixing
/// them should not compile.

namespace lifting {

/// A transparent strong-typedef over an integral representation.
/// `Tag` makes distinct instantiations incompatible; `Rep` is the storage.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  /// Pre-increment, for dense id generation (e.g., chunk sequence numbers).
  constexpr StrongId& operator++() noexcept {
    ++value_;
    return *this;
  }

 private:
  Rep value_{0};
};

template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id) {
  return os << id.value();
}

/// Identifies a participant in the system. Dense in [0, n).
using NodeId = StrongId<struct NodeIdTag, std::uint32_t>;

/// Identifies a stream chunk. Dense in emission order. 32-bit storage: at
/// the paper's 56 chunks/s a stream would need 2.4 years to overflow, and
/// the chunk tables every node keeps (held set, delivery log, proposal
/// histories) halve their footprint — see DESIGN.md §9. The wire model
/// still prices chunk ids at 8 bytes (src/gossip/message.cpp), so measured
/// traffic is unchanged.
using ChunkId = StrongId<struct ChunkIdTag, std::uint32_t>;

/// Index of a gossip period (multiples of Tg since the node joined).
using PeriodIndex = std::uint32_t;

/// Hash support so strong ids can key unordered containers.
struct StrongIdHash {
  template <typename Tag, typename Rep>
  [[nodiscard]] std::size_t operator()(StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace lifting

template <typename Tag, typename Rep>
struct std::hash<lifting::StrongId<Tag, Rep>> {
  [[nodiscard]] std::size_t operator()(
      lifting::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

#endif  // LIFTING_COMMON_TYPES_HPP

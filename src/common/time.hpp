#ifndef LIFTING_COMMON_TIME_HPP
#define LIFTING_COMMON_TIME_HPP

#include <chrono>
#include <cstdint>

/// Simulated time.
///
/// The discrete-event simulator advances a virtual clock; all protocol logic
/// is written against these types so it cannot accidentally consult the wall
/// clock. Microsecond resolution is ample for a gossip period of 500 ms.

namespace lifting {

/// Duration of simulated time (microsecond resolution).
using Duration = std::chrono::microseconds;

/// Clock tag for simulated time points. Never ticks by itself; the
/// simulator owns the current time.
struct SimClock {
  using rep = Duration::rep;
  using period = Duration::period;
  using duration = Duration;
  using time_point = std::chrono::time_point<SimClock, Duration>;
  static constexpr bool is_steady = true;
};

/// A point in simulated time.
using TimePoint = SimClock::time_point;

/// The simulation epoch (t = 0).
inline constexpr TimePoint kSimEpoch{};

/// Convenience literals-free constructors.
[[nodiscard]] constexpr Duration microseconds(std::int64_t us) noexcept {
  return Duration{us};
}
[[nodiscard]] constexpr Duration milliseconds(std::int64_t ms) noexcept {
  return std::chrono::duration_cast<Duration>(std::chrono::milliseconds{ms});
}
[[nodiscard]] constexpr Duration seconds(double s) noexcept {
  return Duration{static_cast<std::int64_t>(s * 1e6)};
}

/// Seconds as a double, for reporting.
[[nodiscard]] constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d.count()) / 1e6;
}
[[nodiscard]] constexpr double to_seconds(TimePoint t) noexcept {
  return to_seconds(t.time_since_epoch());
}

}  // namespace lifting

#endif  // LIFTING_COMMON_TIME_HPP

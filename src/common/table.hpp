#ifndef LIFTING_COMMON_TABLE_HPP
#define LIFTING_COMMON_TABLE_HPP

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

/// Plain-text table rendering for the benchmark harness.
///
/// Every bench binary regenerates one of the paper's tables or figure data
/// series; this helper keeps their output format uniform and readable.

namespace lifting {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    LIFTING_ASSERT(cells.size() == headers_.size(),
                   "TextTable row width mismatch");
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with fixed precision (helper for row construction).
  [[nodiscard]] static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    const auto line = [&] {
      os << '+';
      for (const auto w : widths) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    const auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
           << cells[c] << " |";
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& row : rows_) emit(row);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lifting

#endif  // LIFTING_COMMON_TABLE_HPP

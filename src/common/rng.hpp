#ifndef LIFTING_COMMON_RNG_HPP
#define LIFTING_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

/// Deterministic random number generation.
///
/// Reproducibility across platforms matters for this library: the paper's
/// claims are validated by exact-seeded simulations, and `std::` distribution
/// objects are not reproducible across standard libraries. We therefore ship
/// a small PCG32 generator plus the handful of distributions the protocol and
/// the analysis need, all specified down to the bit.

namespace lifting {

/// SplitMix64 — used to derive well-mixed seeds from (seed, stream) pairs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG32 (XSH-RR variant) — O'Neill's permuted congruential generator.
/// 64-bit state, 32-bit output, excellent statistical quality, tiny.
class Pcg32 {
 public:
  /// Seeds the generator. `stream` selects one of 2^63 independent
  /// sequences, so per-node generators derived from one experiment seed
  /// never correlate.
  constexpr explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                           std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
      : state_(0), inc_((stream << 1U) | 1U) {
    next();
    state_ += splitmix64(seed);
    next();
  }

  /// Next 32 uniformly distributed bits.
  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform integer in [0, bound), bias-free (Lemire-style rejection).
  [[nodiscard]] constexpr std::uint32_t below(std::uint32_t bound) noexcept {
    LIFTING_ASSERT(bound > 0, "Pcg32::below requires bound > 0");
    // Rejection sampling over the largest multiple of `bound` <= 2^32.
    const std::uint32_t threshold = (0U - bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] constexpr double uniform() noexcept {
    const std::uint64_t hi = next();
    const std::uint64_t lo = next();
    const std::uint64_t bits53 = ((hi << 32U) | lo) >> 11U;
    return static_cast<double>(bits53) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] constexpr bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Binomial(n, p) by direct inversion — exact and fast for the small n
  /// used by the protocol model (n is a fanout or request size).
  [[nodiscard]] std::uint32_t binomial(std::uint32_t n, double p) noexcept;

  /// Poisson(lambda) by Knuth's product method (lambda is a fanout-sized
  /// quantity in this library; the method is exact and fast for lambda<~30).
  [[nodiscard]] std::uint32_t poisson(double lambda) noexcept;

  /// Standard normal variate (polar Box–Muller, deterministic ordering).
  [[nodiscard]] double normal() noexcept;

  /// Fisher–Yates shuffle over any random-access container.
  template <typename Container>
  void shuffle(Container& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(static_cast<std::uint32_t>(i))]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Samples k distinct indices uniformly from [0, n) in O(k) expected time
/// (Floyd's algorithm). Order of the result is randomized.
/// Precondition: k <= n.
[[nodiscard]] std::vector<std::uint32_t> sample_k_distinct(Pcg32& rng,
                                                           std::uint32_t n,
                                                           std::uint32_t k);

/// Allocation-free variant: fills `out` (cleared first; capacity reused)
/// with the same k-subset, drawing the identical rng sequence — membership
/// during Floyd's walk is a linear scan of the partial result instead of a
/// hash set (k is single digits on the gossip hot path).
void sample_k_distinct_into(Pcg32& rng, std::uint32_t n, std::uint32_t k,
                            std::vector<std::uint32_t>& out);

/// Rounds x to an integer whose expectation is exactly x
/// (floor(x) + Bernoulli(frac(x))). Used wherever the protocol needs an
/// integer count matching a fractional degree, e.g. (1-δ3)·|R| chunks.
[[nodiscard]] std::uint32_t round_randomized(Pcg32& rng, double x);

/// Derives an independent generator for a named sub-stream of `seed`.
[[nodiscard]] inline Pcg32 derive_rng(std::uint64_t seed,
                                      std::uint64_t stream) noexcept {
  return Pcg32{splitmix64(seed ^ splitmix64(stream)), splitmix64(stream) | 1U};
}

}  // namespace lifting

#endif  // LIFTING_COMMON_RNG_HPP

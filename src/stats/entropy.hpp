#ifndef LIFTING_STATS_ENTROPY_HPP
#define LIFTING_STATS_ENTROPY_HPP

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

/// Entropy and divergence measures used by LiFTinG's statistical audits
/// (paper §5.3, Eq. 1): the auditor computes the Shannon entropy of the
/// empirical distribution of a node's communication partners and compares it
/// to a threshold γ.

namespace lifting::stats {

/// Shannon entropy (base 2) of the empirical distribution given by
/// occurrence counts. Zero counts are ignored; an empty multiset has
/// entropy 0 (the degenerate "no history" case — always below any sane γ).
[[nodiscard]] double shannon_entropy(std::span<const std::uint64_t> counts);

/// Shannon entropy of a normalized probability vector (entries must be
/// >= 0 and sum to ~1; zeros contribute nothing).
[[nodiscard]] double shannon_entropy_pmf(std::span<const double> pmf);

/// Entropy of a multiset of ids (convenience over building count vectors).
/// This is what the auditor computes over F_h / F'_h.
template <typename Id>
[[nodiscard]] double multiset_entropy(std::span<const Id> multiset) {
  std::unordered_map<Id, std::uint64_t> counts;
  counts.reserve(multiset.size());
  for (const auto& id : multiset) ++counts[id];
  std::vector<std::uint64_t> values;
  values.reserve(counts.size());
  for (const auto& [id, c] : counts) values.push_back(c);
  return shannon_entropy(values);
}

/// Kullback–Leibler divergence D(p || q), base 2. Requires q_i > 0 wherever
/// p_i > 0 (returns +inf otherwise). Used in tests to relate the entropy
/// check to the divergence-from-uniform view taken in the paper.
[[nodiscard]] double kl_divergence(std::span<const double> p,
                                   std::span<const double> q);

/// Maximum achievable entropy of a multiset of given size when all elements
/// are distinct: log2(size). This is the paper's log2(n_h · f) ceiling.
[[nodiscard]] double max_entropy(std::uint64_t multiset_size);

/// Expected entropy of a multiset of `draws` i.i.d. uniform picks from a
/// population of size `population` (computed by the exact binomial-moment
/// sum). Used to position γ below the honest operating point.
[[nodiscard]] double expected_uniform_entropy(std::uint64_t population,
                                              std::uint64_t draws);

}  // namespace lifting::stats

#endif  // LIFTING_STATS_ENTROPY_HPP

#include "stats/histogram.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace lifting::stats {

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar_len =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(max_bar_width));
    os << std::fixed << std::setprecision(3) << std::setw(10) << bin_lo(i)
       << " .. " << std::setw(10) << bin_lo(i) + width() << "  "
       << std::setw(7) << std::setprecision(4) << fraction(i) << "  "
       << std::string(std::max<std::size_t>(bar_len, 1), '#') << '\n';
  }
  return os.str();
}

}  // namespace lifting::stats

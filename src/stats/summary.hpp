#ifndef LIFTING_STATS_SUMMARY_HPP
#define LIFTING_STATS_SUMMARY_HPP

#include <cmath>
#include <cstdint>
#include <limits>

/// Streaming summary statistics (Welford's algorithm).
///
/// Used everywhere a distribution must be characterized without storing the
/// samples: per-node score statistics, blame distributions, message latency.

namespace lifting::stats {

class Summary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another summary (parallel trials combine their results).
  /// Chan et al.'s pairwise update.
  void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Population variance (σ²) — the analysis compares against model σ.
  [[nodiscard]] double variance() const noexcept {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  /// Unbiased sample variance (divides by n-1).
  [[nodiscard]] double sample_variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace lifting::stats

#endif  // LIFTING_STATS_SUMMARY_HPP

#ifndef LIFTING_STATS_EMPIRICAL_HPP
#define LIFTING_STATS_EMPIRICAL_HPP

#include <vector>

/// Empirical distribution over stored samples: CDF evaluation and quantiles.
/// Used for the paper's CDF figures (Fig. 11b, Fig. 14) and for computing
/// detection / false-positive fractions at a threshold.

namespace lifting::stats {

class Empirical {
 public:
  Empirical() = default;
  explicit Empirical(std::vector<double> samples);

  void add(double x);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// P(X <= x) over the samples.
  [[nodiscard]] double cdf(double x) const;

  /// P(X < x) — strict version; the score-based detector expels when the
  /// normalized score drops strictly below η (paper §6.3.1).
  [[nodiscard]] double cdf_strict(double x) const;

  /// q-th quantile, q in [0, 1], by linear interpolation between order
  /// statistics.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evaluates the CDF at evenly spaced points in [lo, hi] — one series of a
  /// CDF plot.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_series(
      double lo, double hi, std::size_t points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

}  // namespace lifting::stats

#endif  // LIFTING_STATS_EMPIRICAL_HPP

#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace lifting::stats {

Empirical::Empirical(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void Empirical::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Empirical::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Empirical::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Empirical::cdf_strict(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Empirical::quantile(double q) const {
  LIFTING_ASSERT(!samples_.empty(), "quantile of empty distribution");
  LIFTING_ASSERT(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Empirical::min() const {
  LIFTING_ASSERT(!samples_.empty(), "min of empty distribution");
  ensure_sorted();
  return samples_.front();
}

double Empirical::max() const {
  LIFTING_ASSERT(!samples_.empty(), "max of empty distribution");
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> Empirical::cdf_series(
    double lo, double hi, std::size_t points) const {
  LIFTING_ASSERT(points >= 2, "cdf_series requires at least two points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, cdf(x));
  }
  return out;
}

}  // namespace lifting::stats

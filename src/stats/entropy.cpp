#include "stats/entropy.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace lifting::stats {

double shannon_entropy(std::span<const std::uint64_t> counts) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  double h = 0.0;
  for (const auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double shannon_entropy_pmf(std::span<const double> pmf) {
  double h = 0.0;
  for (const double p : pmf) {
    LIFTING_ASSERT(p >= 0.0, "pmf entries must be non-negative");
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  LIFTING_ASSERT(p.size() == q.size(), "KL divergence: size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) return std::numeric_limits<double>::infinity();
    d += p[i] * std::log2(p[i] / q[i]);
  }
  return d;
}

double max_entropy(std::uint64_t multiset_size) {
  return multiset_size == 0 ? 0.0
                            : std::log2(static_cast<double>(multiset_size));
}

double expected_uniform_entropy(std::uint64_t population, std::uint64_t draws) {
  // For K ~ Binomial(draws, 1/population) occurrences of a given element,
  // E[H] = -population * E[(K/draws) log2(K/draws)]
  //      = -(population/draws) * sum_k P(K=k) * k*log2(k/draws).
  // The binomial pmf is evaluated iteratively to stay stable for large draws.
  if (draws == 0 || population == 0) return 0.0;
  const double n = static_cast<double>(draws);
  const double p = 1.0 / static_cast<double>(population);
  // pmf(k) via the recurrence pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p).
  double pmf = std::pow(1.0 - p, n);  // P(K = 0)
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= draws; ++k) {
    const double kd = static_cast<double>(k);
    pmf *= (n - (kd - 1.0)) / kd * (p / (1.0 - p));
    if (pmf < 1e-18 && k > static_cast<std::uint64_t>(n * p) + 8) break;
    acc += pmf * kd * std::log2(kd / n);
  }
  return -static_cast<double>(population) / n * acc;
}

}  // namespace lifting::stats

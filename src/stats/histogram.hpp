#ifndef LIFTING_STATS_HISTOGRAM_HPP
#define LIFTING_STATS_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

/// Fixed-bin histogram used to render the paper's pdf figures
/// (Fig. 10, 11a, 13) as text.

namespace lifting::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped into the
  /// first/last bin so the mass totals are preserved in reports.
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    LIFTING_ASSERT(hi > lo, "Histogram requires hi > lo");
    LIFTING_ASSERT(bins > 0, "Histogram requires at least one bin");
  }

  void add(double x) noexcept {
    const auto idx = bin_index(x);
    ++counts_[idx];
    ++total_;
  }

  /// Merges another histogram with identical binning (parallel shards of
  /// one distribution combine their partial counts).
  void merge(const Histogram& other) {
    LIFTING_ASSERT(other.lo_ == lo_ && other.hi_ == hi_ &&
                       other.counts_.size() == counts_.size(),
                   "Histogram::merge requires identical binning");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  [[nodiscard]] std::size_t bin_index(double x) const noexcept {
    if (x < lo_) return 0;
    const double w = width();
    auto idx = static_cast<std::size_t>((x - lo_) / w);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    return idx;
  }

  [[nodiscard]] double width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + width() * static_cast<double>(i);
  }
  [[nodiscard]] std::uint64_t count(std::size_t i) const noexcept {
    return counts_[i];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

  /// Fraction of mass in bin i (the paper's "fraction of nodes" y-axis).
  [[nodiscard]] double fraction(std::size_t i) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(counts_[i]) /
                             static_cast<double>(total_);
  }

  /// Renders an ASCII bar chart (one row per non-empty bin).
  [[nodiscard]] std::string render(std::size_t max_bar_width = 60) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

}  // namespace lifting::stats

#endif  // LIFTING_STATS_HISTOGRAM_HPP

#ifndef LIFTING_SIM_SIMULATOR_HPP
#define LIFTING_SIM_SIMULATOR_HPP

#include <cstdint>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

/// Discrete-event simulator: a virtual clock plus the event queue.
///
/// Single-threaded by design — determinism is a feature (see DESIGN.md §4).
/// All protocol components hold a reference to the simulator and schedule
/// their timers and message deliveries through it.

namespace lifting::sim {

class Simulator {
 public:
  using Action = EventQueue::Action;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  void schedule_at(TimePoint at, Action action) {
    LIFTING_ASSERT(at >= now_, "cannot schedule an event in the past");
    queue_.push(at, std::move(action));
  }

  void schedule_after(Duration delay, Action action) {
    LIFTING_ASSERT(delay >= Duration::zero(), "negative delay");
    queue_.push(now_ + delay, std::move(action));
  }

  /// Processes events until the queue is empty.
  void run() {
    while (!queue_.empty()) step();
  }

  /// Processes all events scheduled at or before `deadline`, then advances
  /// the clock to exactly `deadline` (even if the queue still holds later
  /// events).
  void run_until(TimePoint deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) step();
    if (deadline > now_) now_ = deadline;
  }

  /// Pre-sizes the event arena for an expected in-flight event population
  /// (e.g. experiments sized by node count).
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  /// Rewinds the simulator for a fresh run: the clock returns to the epoch,
  /// pending events are discarded and the processed count restarts, but the
  /// event arena keeps its chunks — a reset simulator replays a scenario
  /// without re-paying event-storage allocation (Experiment::reset).
  void reset() noexcept {
    queue_.clear();
    now_ = kSimEpoch;
    events_processed_ = 0;
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }
  /// Timestamp of the earliest pending event. Precondition: has_pending().
  /// Lets an external driver (the wall-clock loop of the wire deployment)
  /// sleep exactly until the next protocol timer is due.
  [[nodiscard]] TimePoint next_event_time() {
    LIFTING_ASSERT(has_pending(), "next_event_time on an empty queue");
    return queue_.next_time();
  }

 private:
  void step() {
    const auto popped = queue_.begin_pop();
    LIFTING_ASSERT(popped.at >= now_, "event queue returned a past event");
    now_ = popped.at;
    ++events_processed_;
    // The entry is recycled even if the action throws (e.g. a require()
    // surfacing through an event) — otherwise the slot would be stranded.
    struct FinishGuard {
      EventQueue& queue;
      std::uint32_t idx;
      ~FinishGuard() { queue.finish_pop(idx); }
    } guard{queue_, popped.idx};
    // Invoked in place — the arena entry is address-stable and not recycled
    // until finish_pop, so the action may freely schedule new events.
    (*popped.action)();
  }

  EventQueue queue_;
  TimePoint now_{kSimEpoch};
  std::uint64_t events_processed_{0};
};

}  // namespace lifting::sim

#endif  // LIFTING_SIM_SIMULATOR_HPP

#ifndef LIFTING_SIM_EVENT_QUEUE_HPP
#define LIFTING_SIM_EVENT_QUEUE_HPP

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "common/unique_function.hpp"

/// Time-ordered event queue for the discrete-event simulator: a timing wheel
/// bucketed by sim-time quantum, with a sorted overflow heap for far-future
/// events.
///
/// Storage layout is built for throughput. All pending events live in a
/// chunked arena with an intrusive free list, so pushes are an O(1) append
/// (or a cache-hot slot reuse) with no per-event heap allocation and no
/// growth reallocation — chunks are stable, so growing to millions of
/// in-flight events never move-copies existing entries; UniqueFunction
/// keeps small closures inline. Each wheel slot is just a 4-byte list head
/// — the whole 8192-slot wheel is a 32 KB table — and events link into
/// their slot's list. When the cursor reaches a slot,
/// the list is harvested into a scratch vector and sorted by (time, seq);
/// events of a later wheel revolution (quantum + kWheelSlots) are relinked
/// for the next lap. Events beyond the wheel horizon wait in a binary
/// min-heap and migrate into the wheel when the cursor reaches their
/// quantum.
///
/// The cursor rewinds when an event is pushed behind it (possible after
/// next_time() peeked ahead of a run_until() deadline), so the queue is
/// correct for arbitrary push orders, not just monotone simulator schedules.
///
/// Ties are broken by insertion sequence number so that runs are
/// deterministic: the queue realizes exactly the total order (time, seq) —
/// two events scheduled for the same instant always execute in scheduling
/// order, on every platform, matching the binary-heap queue it replaced.
///
/// Min-event stash: an event pushed into an otherwise empty queue is held
/// in a one-entry stash instead of the wheel, and later pushes keep the
/// stash holding the global (time, seq) minimum — an earlier newcomer
/// swaps in and the previous front is placed into the wheel. Pop and
/// next_time() serve the stash directly, so the single-outstanding-event
/// shape (a chain of self-reschedules, the binary heap's best case) skips
/// all bucket bookkeeping while realizing the identical total order.

namespace lifting::sim {

class EventQueue {
 public:
  using Action = UniqueFunction<void()>;

  void push(TimePoint at, Action action) {
    if (size_ == 0) {
      // Empty queue: the newcomer is trivially the minimum — stash it.
      stash_at_ = at;
      stash_idx_ = allocate(at, next_seq_++, std::move(action));
      size_ = 1;
      return;
    }
    const std::uint64_t seq = next_seq_++;
    if (stash_idx_ != kNil && at < stash_at_) {
      // Strictly earlier than the stashed front (a time tie keeps the
      // stash: its seq is lower): swap the newcomer in and demote the
      // previous front into the wheel via place() — it already owns an
      // arena entry.
      const std::uint32_t demoted = stash_idx_;
      stash_idx_ = allocate(at, seq, std::move(action));
      stash_at_ = at;
      place(demoted);
      ++size_;
      return;
    }
    const std::uint64_t q = quantum_of(at);
    if (q < cursor_) {
      rewind_to(q);
    }
    if (q - cursor_ >= kWheelSlots) {
      // Beyond the wheel horizon: straight into the overflow min-heap,
      // with no arena round-trip.
      overflow_.push_back(OverflowEntry{at, seq, std::move(action)});
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
      ++size_;
      return;
    }
    const std::uint32_t idx = allocate(at, seq, std::move(action));
    if (current_prepared_ && q == cursor_) {
      // The cursor's quantum is already harvested into order_; route the
      // event there directly. It stays sorted iff it lands at the back of
      // the unconsumed tail (ties are fine — seq rises).
      if (drain_pos_ < order_.size() && at < order_.back().at) {
        current_dirty_ = true;
      }
      order_.push_back(OrderKey{at, seq, idx});
    } else {
      link(idx, q & kWheelMask);
    }
    ++size_;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Pre-sizes the arena for an expected number of in-flight events —
  /// avoids chunk allocations when the caller knows the steady-state event
  /// population (e.g. experiments sized by node count).
  void reserve(std::size_t events) {
    while (static_cast<std::uint64_t>(chunks_.size()) << kChunkBits < events) {
      chunks_.emplace_back(new Entry[kChunkEntries]);
    }
  }

  /// Earliest pending event's time. Precondition: !empty().
  [[nodiscard]] TimePoint next_time() {
    if (stash_idx_ != kNil) return stash_at_;
    ensure_head();
    return order_[drain_pos_].at;
  }

  /// Zero-copy pop handle: the action is invoked in place (arena chunks are
  /// address-stable, and the entry is not recycled until finish_pop), so the
  /// dispatch path never moves the closure.
  struct Popped {
    TimePoint at;
    Action* action;
    std::uint32_t idx;
  };

  /// Consumes the earliest event but leaves its action in the arena. The
  /// caller invokes *action (pushes during the invocation are fine) and
  /// then calls finish_pop(idx). Precondition: !empty().
  [[nodiscard]] Popped begin_pop() {
    if (stash_idx_ != kNil) {
      const std::uint32_t idx = stash_idx_;
      stash_idx_ = kNil;
      --size_;
      return Popped{stash_at_, &entry(idx).action, idx};
    }
    ensure_head();
    const OrderKey& head = order_[drain_pos_];
    ++drain_pos_;
    --size_;
    return Popped{head.at, &entry(head.idx).action, head.idx};
  }

  /// Destroys the invoked action and recycles its arena entry.
  void finish_pop(std::uint32_t idx) noexcept {
    Entry& e = entry(idx);
    e.action = Action{};
    release(idx);
  }

  /// Removes and returns the earliest event (ties in scheduling order).
  [[nodiscard]] std::pair<TimePoint, Action> pop() {
    const Popped popped = begin_pop();
    std::pair<TimePoint, Action> out{popped.at, std::move(*popped.action)};
    finish_pop(popped.idx);
    return out;
  }

  /// Discards every pending event (destroying the closures) and rewinds the
  /// queue to its initial state, but keeps the arena chunks and the scratch
  /// vectors' capacity — a reset queue re-runs a scenario without re-paying
  /// the event-storage allocations (Experiment::reset).
  void clear() noexcept {
    if (stash_idx_ != kNil) {
      entry(stash_idx_).action = Action{};
      stash_idx_ = kNil;
    }
    if (current_prepared_) {
      for (std::size_t i = drain_pos_; i < order_.size(); ++i) {
        entry(order_[i].idx).action = Action{};
      }
    }
    order_.clear();
    drain_pos_ = 0;
    current_prepared_ = false;
    current_dirty_ = false;
    for (auto& head : heads_) {
      for (std::uint32_t i = head; i != kNil;) {
        Entry& e = entry(i);
        e.action = Action{};
        i = e.next;
      }
      head = kNil;
    }
    overflow_.clear();
    // Rebuild the free list over the whole arena, lowest index first, so a
    // reset queue allocates entries in the same order a fresh one would.
    free_head_ = kNil;
    for (std::uint32_t i = arena_size_; i > 0; --i) {
      entry(i - 1).next = free_head_;
      free_head_ = i - 1;
    }
    cursor_ = 0;
    size_ = 0;
    next_seq_ = 0;
  }

 private:
  /// Wheel quantum: 2^9 us = 512 us per slot — fine enough that a slot
  /// holds one gossip "instant" worth of events, coarse enough that chained
  /// micro-delays stay within the current slot.
  static constexpr unsigned kQuantumBits = 9;
  /// 2^13 slots = ~4.2 s of horizon: gossip periods, request timeouts and
  /// network latencies all land in the wheel; only experiment-level timers
  /// overflow.
  static constexpr unsigned kWheelBits = 13;
  static constexpr std::uint64_t kWheelSlots = 1ULL << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSlots - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;
  /// Arena chunk: 2^10 entries (~56 KB) per stable allocation — kept under
  /// the allocator's mmap threshold so chunks recycle through the heap
  /// instead of paying fresh page faults per simulation.
  static constexpr unsigned kChunkBits = 10;
  static constexpr std::uint32_t kChunkEntries = 1U << kChunkBits;
  static constexpr std::uint32_t kChunkMask = kChunkEntries - 1;

  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t next;  // intrusive slot list / free list link
    Action action;
  };
  struct OverflowEntry {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct OrderKey {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t idx;  // arena index
  };
  struct KeyEarlier {
    [[nodiscard]] bool operator()(const OrderKey& a,
                                  const OrderKey& b) const noexcept {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  struct Later {
    [[nodiscard]] bool operator()(const OverflowEntry& a,
                                  const OverflowEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] static std::uint64_t quantum_of(TimePoint at) noexcept {
    return static_cast<std::uint64_t>(at.time_since_epoch().count()) >>
           kQuantumBits;
  }
  [[nodiscard]] static TimePoint quantum_start(std::uint64_t q) noexcept {
    return TimePoint{Duration{static_cast<Duration::rep>(q << kQuantumBits)}};
  }

  [[nodiscard]] Entry& entry(std::uint32_t idx) noexcept {
    return chunks_[idx >> kChunkBits][idx & kChunkMask];
  }

  [[nodiscard]] std::uint32_t allocate(TimePoint at, std::uint64_t seq,
                                       Action action) {
    std::uint32_t idx = free_head_;
    if (idx == kNil) {
      if ((arena_size_ >> kChunkBits) == chunks_.size()) {
        chunks_.emplace_back(new Entry[kChunkEntries]);
      }
      idx = arena_size_++;
    }
    Entry& e = entry(idx);
    if (idx == free_head_) free_head_ = e.next;
    e.at = at;
    e.seq = seq;
    e.action = std::move(action);
    return idx;
  }

  void release(std::uint32_t idx) noexcept {
    entry(idx).next = free_head_;
    free_head_ = idx;
  }

  /// Routes an already-allocated entry into the wheel, the cursor's
  /// harvested order_, or the overflow heap according to its quantum —
  /// used by stash demotion, where the event owns an arena entry (push()
  /// routes fresh events itself so overflow-bound ones skip the arena).
  void place(std::uint32_t idx) {
    Entry& e = entry(idx);
    const std::uint64_t q = quantum_of(e.at);
    if (q < cursor_) {
      rewind_to(q);
    }
    if (q - cursor_ >= kWheelSlots) {
      // Beyond the wheel horizon: park in the overflow min-heap.
      overflow_.push_back(OverflowEntry{e.at, e.seq, std::move(e.action)});
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
      release(idx);
      return;
    }
    if (current_prepared_ && q == cursor_) {
      // The cursor's quantum is already harvested into order_; route the
      // event there directly. Unlike push()'s append (whose seq is always
      // the highest so far, so a time tie stays sorted), a demoted entry
      // carries an OLDER seq than later pushes — compare the full
      // (time, seq) key against the tail.
      if (drain_pos_ < order_.size() &&
          KeyEarlier{}(OrderKey{e.at, e.seq, idx}, order_.back())) {
        current_dirty_ = true;
      }
      order_.push_back(OrderKey{e.at, e.seq, idx});
    } else {
      link(idx, q & kWheelMask);
    }
  }

  void link(std::uint32_t idx, std::uint64_t slot) noexcept {
    entry(idx).next = heads_[slot];
    heads_[slot] = idx;
  }

  /// Positions order_[drain_pos_] on the globally earliest pending event.
  /// Precondition: !empty().
  void ensure_head() {
    LIFTING_ASSERT(size_ > 0, "event queue is empty");
    for (;;) {
      if (!current_prepared_) {
        if (heads_[cursor_ & kWheelMask] == kNil) {
          step_cursor();
          continue;
        }
        if (!prepare_current_slot()) {
          step_cursor();
          continue;
        }
        return;
      }
      if (current_dirty_) {
        std::sort(order_.begin() + static_cast<std::ptrdiff_t>(drain_pos_),
                  order_.end(), KeyEarlier{});
        current_dirty_ = false;
      }
      if (drain_pos_ < order_.size()) return;
      // Current quantum exhausted.
      order_.clear();
      drain_pos_ = 0;
      current_prepared_ = false;
      step_cursor();
    }
  }

  /// Harvests the cursor's slot list into order_, sorted by (time, seq),
  /// relinking events that belong to a later wheel revolution. Returns
  /// false when the slot held only later-revolution events.
  bool prepare_current_slot() {
    const std::uint64_t slot = cursor_ & kWheelMask;
    std::uint32_t i = heads_[slot];
    heads_[slot] = kNil;
    order_.clear();
    while (i != kNil) {
      const Entry& e = entry(i);
#if defined(__GNUC__) || defined(__clang__)
      if (e.next != kNil) __builtin_prefetch(&entry(e.next));
#endif
      order_.push_back(OrderKey{e.at, e.seq, i});
      i = e.next;
    }
    std::sort(order_.begin(), order_.end(), KeyEarlier{});
    const TimePoint boundary = quantum_start(cursor_ + 1);
    auto first_later = std::lower_bound(
        order_.begin(), order_.end(), boundary,
        [](const OrderKey& k, TimePoint t) { return k.at < t; });
    for (auto it = first_later; it != order_.end(); ++it) {
      link(it->idx, slot);
    }
    order_.erase(first_later, order_.end());
    if (order_.empty()) return false;
    drain_pos_ = 0;
    current_prepared_ = true;
    current_dirty_ = false;
    return true;
  }

  /// Advances the cursor one quantum (or jumps to the overflow head when
  /// the wheel is empty) and migrates overflow events that came due.
  void step_cursor() {
    if (size_ == overflow_.size()) {
      // The wheel is empty: jump straight to the overflow head's quantum.
      LIFTING_ASSERT(!overflow_.empty(), "cursor step on empty queue");
      cursor_ = quantum_of(overflow_.front().at);
    } else {
      ++cursor_;
    }
    migrate_due_overflow();
  }

  /// Moves overflow events whose quantum the cursor reached into the
  /// cursor's (not yet harvested) slot. The original sequence number is
  /// preserved, so the (time, seq) total order spans the overflow boundary.
  void migrate_due_overflow() {
    while (!overflow_.empty() && quantum_of(overflow_.front().at) <= cursor_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      OverflowEntry& moved = overflow_.back();
      const std::uint32_t idx =
          allocate(moved.at, moved.seq, std::move(moved.action));
      link(idx, cursor_ & kWheelMask);
      overflow_.pop_back();
    }
  }

  /// Moves the cursor back to quantum `q` after a push behind it: the
  /// unconsumed harvest is relinked into its slot and re-harvested when the
  /// cursor comes around again. Correct for arbitrary rewinds — every drain
  /// re-checks revolutions.
  void rewind_to(std::uint64_t q) {
    if (current_prepared_) {
      for (std::size_t i = drain_pos_; i < order_.size(); ++i) {
        link(order_[i].idx, cursor_ & kWheelMask);
      }
      order_.clear();
      drain_pos_ = 0;
      current_prepared_ = false;
      current_dirty_ = false;
    }
    cursor_ = q;
  }

  std::vector<std::unique_ptr<Entry[]>> chunks_;  // stable arena storage
  std::uint32_t arena_size_ = 0;                  // entries ever allocated
  std::vector<OverflowEntry> overflow_;  // min-heap ordered by (at, seq)
  std::vector<OrderKey> order_;  // sorted drain scratch for the cursor slot
  std::array<std::uint32_t, kWheelSlots> heads_;  // slot list heads
  std::uint32_t free_head_ = kNil;
  /// Min-event stash: when != kNil, entry stash_idx_ (scheduled at
  /// stash_at_) is the queue's global (time, seq) minimum and is NOT linked
  /// into any wheel slot. Invariant: every other pending event was either
  /// pushed while the stash held an earlier-or-equal key, or was demoted
  /// out of the stash by a strictly earlier newcomer.
  std::uint32_t stash_idx_ = kNil;
  TimePoint stash_at_{};
  std::uint64_t cursor_ = 0;   // quantum currently being drained
  std::size_t drain_pos_ = 0;  // consumed prefix of order_
  bool current_prepared_ = false;  // cursor slot harvested into order_
  bool current_dirty_ = false;     // order_ tail needs a re-sort
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;

 public:
  EventQueue() { heads_.fill(kNil); }
};

}  // namespace lifting::sim

#endif  // LIFTING_SIM_EVENT_QUEUE_HPP

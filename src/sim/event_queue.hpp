#ifndef LIFTING_SIM_EVENT_QUEUE_HPP
#define LIFTING_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/unique_function.hpp"

/// Time-ordered event queue for the discrete-event simulator.
///
/// Ties are broken by insertion sequence number so that runs are
/// deterministic: two events scheduled for the same instant always execute
/// in scheduling order, on every platform.

namespace lifting::sim {

class EventQueue {
 public:
  using Action = UniqueFunction<void()>;

  void push(TimePoint at, Action action) {
    heap_.push(Entry{at, next_seq_++, std::move(action)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] TimePoint next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest event's action.
  [[nodiscard]] std::pair<TimePoint, Action> pop() {
    // std::priority_queue::top() returns a const&, but we must move the
    // action out; const_cast is confined here and safe because the entry is
    // popped immediately after.
    auto& top = const_cast<Entry&>(heap_.top());
    std::pair<TimePoint, Action> out{top.at, std::move(top.action)};
    heap_.pop();
    return out;
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_{0};
};

}  // namespace lifting::sim

#endif  // LIFTING_SIM_EVENT_QUEUE_HPP

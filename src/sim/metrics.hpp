#ifndef LIFTING_SIM_METRICS_HPP
#define LIFTING_SIM_METRICS_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

/// Named counters for experiment accounting (message counts, byte volumes).
///
/// Handles are resolved once (string lookup) and then bumped through a plain
/// reference, keeping the hot path allocation- and hash-free.

namespace lifting::sim {

class Counter {
 public:
  void add(std::uint64_t v = 1) noexcept { value_ += v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept {
    value_ = 0;
    mark_ = 0;
  }

  /// Windowed (streamed) reads: mark() closes the current window and
  /// since_mark() reports what accumulated after the last mark — a
  /// periodic reporter keeps per-window rates in O(1) state instead of
  /// retaining a sample per epoch.
  void mark() noexcept { mark_ = value_; }
  [[nodiscard]] std::uint64_t since_mark() const noexcept {
    return value_ - mark_;
  }

 private:
  std::uint64_t value_{0};
  std::uint64_t mark_{0};
};

class MetricsRegistry {
 public:
  /// Returns a stable reference to the counter registered under `name`,
  /// creating it on first use. References stay valid for the registry's
  /// lifetime (deque storage never reallocates elements).
  [[nodiscard]] Counter& counter(const std::string& name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return storage_[it->second];
    index_.emplace(name, storage_.size());
    names_.push_back(name);
    storage_.emplace_back();
    return storage_.back();
  }

  [[nodiscard]] std::uint64_t value(const std::string& name) const {
    const auto it = index_.find(name);
    return it == index_.end() ? 0 : storage_[it->second].value();
  }

  /// Snapshot of all counters, in registration order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out.emplace_back(names_[i], storage_[i].value());
    }
    return out;
  }

  void reset_all() noexcept {
    for (auto& c : storage_) c.reset();
  }

  /// Closes every counter's streaming window (see Counter::mark).
  void mark_all() noexcept {
    for (auto& c : storage_) c.mark();
  }

 private:
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::string> names_;
  std::deque<Counter> storage_;
};

}  // namespace lifting::sim

#endif  // LIFTING_SIM_METRICS_HPP

#ifndef LIFTING_SIM_NETWORK_HPP
#define LIFTING_SIM_NETWORK_HPP

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

/// Simulated network with the failure model of the paper's analysis (§6.2):
/// independent Bernoulli per-message loss on datagram ("UDP") traffic, no
/// loss on reliable ("TCP") traffic, plus a per-node uplink capacity that
/// serializes outgoing messages — the mechanism by which weak or overloaded
/// nodes fail to serve in time and accrue organic (wrongful) blames, exactly
/// as observed on PlanetLab (§7.3).
///
/// Built for scale: endpoints live in a dense vector indexed by the
/// contiguous NodeId values (no hashing on the per-message path), and
/// in-flight messages are pooled — a send acquires a free Delivery slot,
/// and the scheduled closure captures only {network, slot}, so steady-state
/// traffic performs no heap allocation per message.

namespace lifting::sim {

/// Transport class of a message. The dissemination protocol and the direct
/// verifications use datagrams; local-history audits use the reliable
/// channel (paper §5.3: audits are sporadic, bulky, and loss-sensitive).
enum class Channel : std::uint8_t { kDatagram, kReliable };

/// Per-node link characteristics.
struct LinkProfile {
  /// Per-direction loss probability on datagram messages. The effective
  /// per-message loss between a and b is 1-(1-loss_a)(1-loss_b).
  double loss = 0.0;
  /// One-way propagation delay contributed by this endpoint.
  Duration latency_base = milliseconds(25);
  /// Uniform extra delay in [0, jitter) contributed by this endpoint.
  Duration latency_jitter = milliseconds(10);
  /// Uplink capacity in bits per second (serializes all sends).
  double upload_capacity_bps = 20e6;
  /// Datagrams are dropped when the uplink backlog exceeds this bound
  /// (models a full interface queue). Reliable traffic is never dropped,
  /// only delayed.
  Duration max_queue_delay = seconds(2.0);
  /// Messages at or below this size bypass the uplink queue (they still pay
  /// transmission time, but do not wait behind bulk serves). Models the
  /// interleaving of small control packets with large data packets — without
  /// it a congested uplink delays 60-byte acks by seconds, which no real
  /// stack does.
  std::size_t priority_bytes = 512;
};

/// Aggregate traffic statistics (per network).
struct NetworkStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_lost = 0;      // lost in flight (Bernoulli)
  std::uint64_t datagrams_dropped = 0;   // dropped at the sender's queue
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t reliable_sent = 0;
  std::uint64_t reliable_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t no_route = 0;  // sends addressed to a torn-down endpoint
};

/// A delivered message.
template <typename Payload>
struct Delivery {
  NodeId from;
  NodeId to;
  Channel channel = Channel::kDatagram;
  std::size_t bytes = 0;
  TimePoint sent_at;
  Payload payload;
};

/// The network itself, generic over the payload type so the substrate stays
/// independent of the protocol stack above it.
template <typename Payload>
class Network {
 public:
  /// Receive handler. The delivery is owned by the network's pool; handlers
  /// that keep the payload must move it out.
  using Handler = std::function<void(Delivery<Payload>&)>;

  Network(Simulator& sim, Pcg32 rng) : sim_(sim), rng_(rng) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Pre-sizes the endpoint table for a known deployment: add_node grows
  /// it one id at a time, and each doubling move-constructs every
  /// registered handler — pure waste when the population is known up
  /// front. reset() keeps the capacity, so a reused network pays this
  /// once.
  void reserve_nodes(std::size_t n) { nodes_.reserve(n); }

  /// Registers a node with its link profile and receive handler.
  /// Re-registration after remove_node() is allowed (a rejoining id);
  /// registering a live endpoint twice is a bug.
  void add_node(NodeId id, LinkProfile profile, Handler handler) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= nodes_.size()) nodes_.resize(v + 1);
    LIFTING_ASSERT(!nodes_[v].registered,
                   "node registered twice with the network");
    auto& ep = nodes_[v];
    ep.profile = profile;
    ep.handler = std::move(handler);
    ep.uplink_free = kSimEpoch;
    ep.attached = true;
    ep.registered = true;
  }

  /// Replaces the receive handler (used when wiring layered components).
  void set_handler(NodeId id, Handler handler) {
    endpoint(id).handler = std::move(handler);
  }

  /// Replaces a node's link profile mid-run (timeline set_link events).
  void set_profile(NodeId id, LinkProfile profile) {
    endpoint(id).profile = profile;
  }

  /// Detaches a node: all traffic to/from it is discarded from now on.
  /// Used for hard churn in tests; expulsion in LiFTinG is a membership-level
  /// decision and does not detach the victim.
  void detach(NodeId id) { endpoint(id).attached = false; }
  [[nodiscard]] bool attached(NodeId id) const {
    return endpoint(id).attached;
  }

  /// Tears an endpoint down (node left or crashed): the registration is
  /// cleared, the handler is released, and every in-flight delivery to the
  /// id lands in the void — its pooled slot is still recycled when the
  /// delivery event fires, so teardown never leaks pool slots. The id may
  /// be re-registered later via add_node().
  void remove_node(NodeId id) {
    Endpoint* ep = maybe_endpoint(id);
    if (ep == nullptr) return;
    ep->registered = false;
    ep->attached = false;
    ep->handler = nullptr;
    ep->uplink_free = kSimEpoch;
  }

  /// In-flight deliveries currently occupying pool slots. Returns to zero
  /// once every scheduled delivery event has fired (leak check in tests).
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pool_.size() - free_.size();
  }

  /// Rewinds the network for a fresh run: endpoints and statistics are
  /// cleared and the rng replaced, but the delivery pool keeps its slots
  /// (stale payloads are overwritten on reuse) — the steady-state in-flight
  /// population of the next run occupies already-grown storage instead of
  /// re-paying the pool's growth allocations (Experiment::reset). Slot
  /// indices are invisible to outcomes (delivery order is the event
  /// queue's (time, seq) order), so reuse order does not affect results.
  void reset(Pcg32 rng) {
    rng_ = rng;
    nodes_.clear();
    stats_ = NetworkStats{};
    free_.resize(pool_.size());
    for (std::uint32_t i = 0; i < free_.size(); ++i) free_[i] = i;
  }

  /// Sends `payload` of `bytes` from `from` to `to` on `channel`.
  /// Datagrams may be lost or dropped; reliable messages always arrive.
  void send(NodeId from, NodeId to, Channel channel, std::size_t bytes,
            Payload payload) {
    LIFTING_ASSERT(from != to, "node sending to itself");
    Endpoint* src_ep = maybe_endpoint(from);
    if (src_ep == nullptr) return;  // departed sender: nothing leaves the NIC
    auto& src = *src_ep;
    const Endpoint* dst_ep = maybe_endpoint(to);
    stats_.bytes_sent += bytes;
    if (channel == Channel::kDatagram) {
      ++stats_.datagrams_sent;
    } else {
      ++stats_.reliable_sent;
    }
    if (!src.attached) return;
    if (dst_ep == nullptr) {
      // Stale destination (a departed manager/partner id held by a live
      // node): the packet vanishes on the wire.
      if (channel == Channel::kDatagram) ++stats_.datagrams_lost;
      ++stats_.no_route;
      return;
    }
    const auto& dst = *dst_ep;

    // Uplink serialization: the message occupies the sender's uplink for
    // bytes*8/capacity seconds, queued behind earlier sends. Small control
    // packets interleave (priority lane): they pay transmission time but do
    // not wait in the bulk queue.
    const auto tx_time = transmission_time(bytes, src.profile);
    TimePoint departure;
    if (bytes <= src.profile.priority_bytes) {
      departure = sim_.now() + tx_time;
    } else {
      const TimePoint start = std::max(sim_.now(), src.uplink_free);
      const Duration backlog = start - sim_.now();
      if (channel == Channel::kDatagram &&
          backlog > src.profile.max_queue_delay) {
        ++stats_.datagrams_dropped;
        return;  // interface queue full; datagram silently dropped
      }
      src.uplink_free = start + tx_time;
      departure = src.uplink_free;
    }

    if (channel == Channel::kDatagram) {
      const double loss =
          1.0 - (1.0 - src.profile.loss) * (1.0 - dst.profile.loss);
      if (rng_.bernoulli(loss)) {
        ++stats_.datagrams_lost;
        return;
      }
    }

    Duration latency = propagation_delay(src.profile, dst.profile);
    if (channel == Channel::kReliable) {
      // Connection setup: one extra round trip of base propagation.
      latency += 2 * (src.profile.latency_base + dst.profile.latency_base);
    }
    const TimePoint deliver_at = departure + latency;

    // Acquire a pooled in-flight slot; the scheduled closure captures only
    // {this, slot}, which UniqueFunction stores inline — the whole delivery
    // path allocates nothing in steady state.
    const std::uint32_t slot = acquire();
    Delivery<Payload>& d = pool_[slot];
    d.from = from;
    d.to = to;
    d.channel = channel;
    d.bytes = bytes;
    d.sent_at = sim_.now();
    d.payload = std::move(payload);
    sim_.schedule_at(deliver_at, [this, slot] { deliver(slot); });
  }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LinkProfile& profile(NodeId id) const {
    return endpoint(id).profile;
  }

 private:
  struct Endpoint {
    LinkProfile profile;
    Handler handler;
    TimePoint uplink_free = kSimEpoch;
    bool attached = false;
    bool registered = false;
  };

  [[nodiscard]] Endpoint& endpoint(NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    LIFTING_ASSERT(v < nodes_.size() && nodes_[v].registered,
                   "unknown node id");
    return nodes_[v];
  }
  [[nodiscard]] const Endpoint& endpoint(NodeId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    LIFTING_ASSERT(v < nodes_.size() && nodes_[v].registered,
                   "unknown node id");
    return nodes_[v];
  }
  /// Like endpoint(), but null for ids never registered or torn down.
  [[nodiscard]] Endpoint* maybe_endpoint(NodeId id) {
    const auto v = static_cast<std::size_t>(id.value());
    if (v >= nodes_.size() || !nodes_[v].registered) return nullptr;
    return &nodes_[v];
  }

  [[nodiscard]] std::uint32_t acquire() {
    if (free_.empty()) {
      pool_.emplace_back();
      return static_cast<std::uint32_t>(pool_.size() - 1);
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }

  void deliver(std::uint32_t slot) {
    // Move the delivery out before running the handler: the handler may
    // send (growing the pool and invalidating references into it). The
    // slot is recycled before any drop check, so deliveries to torn-down
    // endpoints cannot leak pool slots.
    Delivery<Payload> d = std::move(pool_[slot]);
    free_.push_back(slot);
    Endpoint* dest = maybe_endpoint(d.to);
    if (dest == nullptr || !dest->attached || !dest->handler) return;
    if (d.channel == Channel::kDatagram) {
      ++stats_.datagrams_delivered;
    } else {
      ++stats_.reliable_delivered;
    }
    stats_.bytes_delivered += d.bytes;
    dest->handler(d);
  }

  [[nodiscard]] static Duration transmission_time(std::size_t bytes,
                                                  const LinkProfile& p) {
    const double seconds_on_wire =
        static_cast<double>(bytes) * 8.0 / p.upload_capacity_bps;
    return Duration{static_cast<Duration::rep>(seconds_on_wire * 1e6)};
  }

  [[nodiscard]] Duration propagation_delay(const LinkProfile& a,
                                           const LinkProfile& b) {
    const Duration base = a.latency_base + b.latency_base;
    const auto jitter_span = (a.latency_jitter + b.latency_jitter).count();
    const auto jitter = jitter_span == 0
                            ? Duration::zero()
                            : Duration{static_cast<Duration::rep>(
                                  rng_.uniform() *
                                  static_cast<double>(jitter_span))};
    return base + jitter;
  }

  Simulator& sim_;
  Pcg32 rng_;
  std::vector<Endpoint> nodes_;        // dense, indexed by NodeId::value()
  std::vector<Delivery<Payload>> pool_;  // in-flight message slots
  std::vector<std::uint32_t> free_;      // recycled pool slots
  NetworkStats stats_;
};

}  // namespace lifting::sim

#endif  // LIFTING_SIM_NETWORK_HPP

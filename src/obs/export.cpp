#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace lifting::obs {

namespace {

struct DumpHeader {
  std::uint32_t magic = kDumpMagic;
  std::uint32_t version = kDumpVersion;
  std::uint32_t node = 0;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
};
static_assert(sizeof(DumpHeader) == 24, "stable dump header layout");

}  // namespace

std::vector<TraceRecord> to_vector(const TraceRing& ring) {
  std::vector<TraceRecord> out;
  out.reserve(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) out.push_back(ring[i]);
  return out;
}

bool write_binary_dump(const std::string& path,
                       const std::vector<TraceRecord>& records,
                       std::uint32_t node) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace dump %s\n", path.c_str());
    return false;
  }
  DumpHeader header;
  header.node = node;
  header.count = records.size();
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  if (ok && !records.empty()) {
    ok = std::fwrite(records.data(), sizeof(TraceRecord), records.size(), f) ==
         records.size();
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) std::fprintf(stderr, "obs: short write on %s\n", path.c_str());
  return ok;
}

bool write_binary_dump(const std::string& path, const TraceRing& ring,
                       std::uint32_t node) {
  return write_binary_dump(path, to_vector(ring), node);
}

bool read_binary_dump(const std::string& path, std::vector<TraceRecord>& out,
                      std::uint32_t* node) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot read trace dump %s\n", path.c_str());
    return false;
  }
  DumpHeader header;
  bool ok = std::fread(&header, sizeof(header), 1, f) == 1 &&
            header.magic == kDumpMagic && header.version == kDumpVersion;
  if (ok) {
    const std::size_t base = out.size();
    out.resize(base + header.count);
    ok = std::fread(out.data() + base, sizeof(TraceRecord), header.count, f) ==
         header.count;
    if (!ok) out.resize(base);
  }
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "obs: %s is not a readable trace dump\n",
                 path.c_str());
    return false;
  }
  if (node != nullptr) *node = header.node;
  return true;
}

void sort_for_merge(std::vector<TraceRecord>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.at_us != b.at_us) return a.at_us < b.at_us;
                     if (a.actor != b.actor) return a.actor < b.actor;
                     return static_cast<std::uint8_t>(a.kind) <
                            static_cast<std::uint8_t>(b.kind);
                   });
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceRecord>& records) {
  os << "{\"traceEvents\":[\n";
  char line[256];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    std::snprintf(
        line, sizeof(line),
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"p\","
        "\"ts\":%lld,\"pid\":%u,\"tid\":0,\"args\":{\"subject\":%u,"
        "\"evidence\":%llu,\"value\":%.6g,\"detail\":%u,\"extra\":%u}}%s\n",
        kind_name(r.kind), kind_category(r.kind),
        static_cast<long long>(r.at_us), r.actor, r.subject,
        static_cast<unsigned long long>(r.evidence),
        static_cast<double>(r.value), r.detail, r.extra,
        i + 1 < records.size() ? "," : "");
    os << line;
  }
  os << "]}\n";
}

}  // namespace lifting::obs

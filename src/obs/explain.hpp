#ifndef LIFTING_OBS_EXPLAIN_HPP
#define LIFTING_OBS_EXPLAIN_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "obs/trace.hpp"

/// Blame-provenance forensics (DESIGN.md §13): reconstruct the causal
/// chain behind a node's score or expulsion from the flight-recorder
/// ring — which verifications produced verdicts, which blame rows those
/// verdicts became, which audit / confirm round supplied the evidence,
/// which score read triggered the expulsion request, and how the
/// managers voted. The output is a plain-text forensic report, one line
/// per relevant record in virtual-time order, deterministic for a fixed
/// ring (tests assert it bit-identical across thread counts).

namespace lifting::obs {

/// Stable name of a gossip::BlameReason raw value (report lines).
[[nodiscard]] const char* blame_reason_name(std::uint8_t reason) noexcept;

/// Per-category record counts plus the blame/expulsion summary the
/// report's footer prints — also handy for tests.
struct ExplainSummary {
  std::uint64_t verdicts = 0;
  std::uint64_t blames_emitted_against = 0;   ///< kBlameEmitted rows
  std::uint64_t blame_rows_applied = 0;       ///< manager-side rows
  double blame_value_against = 0.0;           ///< summed emitted value
  std::uint64_t score_reads = 0;
  std::uint64_t expel_requests = 0;
  std::uint64_t expel_votes = 0;
  std::uint64_t expel_agree_votes = 0;
  std::uint64_t expel_commits = 0;
  bool expelled = false;  ///< an expulsion was applied to the membership
};

/// Walks the ring and summarizes every record relevant to `node`.
[[nodiscard]] ExplainSummary summarize(const TraceRing& ring, NodeId node);

/// Walks the ring oldest-first and renders the forensic report for
/// `node`: every verdict, blame row, audit, score read, expulsion vote
/// and handoff in which the node is the subject (plus the audits it was
/// made to serve), ending with the summary footer.
[[nodiscard]] std::string explain(const TraceRing& ring, NodeId node);

}  // namespace lifting::obs

#endif  // LIFTING_OBS_EXPLAIN_HPP

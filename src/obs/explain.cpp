#include "obs/explain.hpp"

#include <cstdio>

#include "gossip/message.hpp"

namespace lifting::obs {

const char* blame_reason_name(std::uint8_t reason) noexcept {
  switch (static_cast<gossip::BlameReason>(reason)) {
    case gossip::BlameReason::kDirectVerification:
      return "direct_verification";
    case gossip::BlameReason::kInvalidAck: return "invalid_ack";
    case gossip::BlameReason::kFanoutDecrease: return "fanout_decrease";
    case gossip::BlameReason::kTestimony: return "testimony";
    case gossip::BlameReason::kAposterioriCheck: return "aposteriori_check";
    case gossip::BlameReason::kRateCheck: return "rate_check";
    case gossip::BlameReason::kPostDeparture: return "post_departure";
  }
  return "unknown";
}

namespace {

/// Is this record part of node's forensic story? Engine-phase records are
/// excluded on purpose: they dominate the ring and carry no verdict.
bool relevant(const TraceRecord& r, std::uint32_t node) {
  switch (r.kind) {
    case EventKind::kVerdictUnserved:
    case EventKind::kVerdictNoAck:
    case EventKind::kVerdictFanout:
    case EventKind::kVerdictTestimony:
    case EventKind::kConfirmRound:
    case EventKind::kAuditReport:
    case EventKind::kBlameEmitted:
    case EventKind::kBlameApplied:
    case EventKind::kBlameLedger:
    case EventKind::kScoreRead:
    case EventKind::kExpelRequest:
    case EventKind::kExpelVote:
    case EventKind::kExpelCommit:
    case EventKind::kExpulsionApplied:
    case EventKind::kHandoff:
      return r.subject == node;
    case EventKind::kAuditServed:
      return r.actor == node;  // the node was made to hand over its history
    default:
      return false;
  }
}

void format_line(std::string& out, const TraceRecord& r) {
  char line[256];
  const double at = static_cast<double>(r.at_us) / 1e6;
  switch (r.kind) {
    case EventKind::kVerdictUnserved:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] verdict by %u: %u of the requested chunks of "
                    "period %llu never served -> blame %.3f "
                    "(direct verification)\n",
                    at, r.actor, r.extra,
                    static_cast<unsigned long long>(r.evidence),
                    static_cast<double>(r.value));
      break;
    case EventKind::kVerdictNoAck:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] verdict by %u: serve batch of period %llu "
                    "never acknowledged -> blame %.3f (invalid ack)\n",
                    at, r.actor, static_cast<unsigned long long>(r.evidence),
                    static_cast<double>(r.value));
      break;
    case EventKind::kVerdictFanout:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] verdict by %u: ack of period %llu listed too "
                    "few partners -> blame %.3f (fanout decrease)\n",
                    at, r.actor, static_cast<unsigned long long>(r.evidence),
                    static_cast<double>(r.value));
      break;
    case EventKind::kVerdictTestimony:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] verdict by %u: confirm round of period %llu "
                    "closed %u yes / %u no -> blame %.3f (testimony)\n",
                    at, r.actor, static_cast<unsigned long long>(r.evidence),
                    r.extra >> 8, r.extra & 0xFF,
                    static_cast<double>(r.value));
      break;
    case EventKind::kConfirmRound:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] confirm round opened by %u about period %llu "
                    "(%u witnesses polled)\n",
                    at, r.actor, static_cast<unsigned long long>(r.evidence),
                    r.extra);
      break;
    case EventKind::kAuditServed:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] audit %llu: handed local history to auditor "
                    "%u\n",
                    at, static_cast<unsigned long long>(r.evidence),
                    r.subject);
      break;
    case EventKind::kAuditReport:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] audit %llu report by %u: %u confirmed, checks "
                    "failed:%s%s%s%s\n",
                    at, static_cast<unsigned long long>(r.evidence), r.actor,
                    r.extra, (r.detail & 1) != 0 ? " fanout-entropy" : "",
                    (r.detail & 2) != 0 ? " fanin-entropy" : "",
                    (r.detail & 4) != 0 ? " rate" : "",
                    r.detail == 0 ? " none" : "");
      break;
    case EventKind::kBlameEmitted:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] blame emitted by %u: value %.3f reason %s\n",
                    at, r.actor, static_cast<double>(r.value),
                    blame_reason_name(r.detail));
      break;
    case EventKind::kBlameApplied:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] manager %u applied blame row: value %.3f "
                    "reason %s (from %llu)\n",
                    at, r.actor, static_cast<double>(r.value),
                    blame_reason_name(r.detail),
                    static_cast<unsigned long long>(r.evidence));
      break;
    case EventKind::kBlameLedger:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] ground-truth ledger row by %u: value %.3f "
                    "reason %s\n",
                    at, r.actor, static_cast<double>(r.value),
                    blame_reason_name(r.detail));
      break;
    case EventKind::kScoreRead:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] score read %llu started by %u\n", at,
                    static_cast<unsigned long long>(r.evidence), r.actor);
      break;
    case EventKind::kExpelRequest:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] expulsion requested by %u (observed score "
                    "%.3f below threshold)\n",
                    at, r.actor, static_cast<double>(r.value));
      break;
    case EventKind::kExpelVote:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] expulsion ballot from manager %u: %s\n", at,
                    r.actor, r.detail != 0 ? "agree" : "refuse");
      break;
    case EventKind::kExpelCommit:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] manager %u committed the expulsion%s\n", at,
                    r.actor,
                    r.detail != 0 ? " (entropy audit, direct)" : "");
      break;
    case EventKind::kExpulsionApplied:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] deployment applied the expulsion (first "
                    "committing manager %u)\n",
                    at, r.actor);
      break;
    case EventKind::kHandoff:
      std::snprintf(line, sizeof(line),
                    "[%9.3fs] manager handoff: %llu's row migrated to "
                    "replacement %u\n",
                    at, static_cast<unsigned long long>(r.evidence),
                    r.actor);
      break;
    default:
      return;
  }
  out += line;
}

}  // namespace

ExplainSummary summarize(const TraceRing& ring, NodeId node) {
  ExplainSummary s;
  const std::uint32_t id = node.value();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const TraceRecord& r = ring[i];
    if (!relevant(r, id)) continue;
    switch (r.kind) {
      case EventKind::kVerdictUnserved:
      case EventKind::kVerdictNoAck:
      case EventKind::kVerdictFanout:
      case EventKind::kVerdictTestimony:
        ++s.verdicts;
        break;
      case EventKind::kBlameEmitted:
        ++s.blames_emitted_against;
        s.blame_value_against += static_cast<double>(r.value);
        break;
      case EventKind::kBlameApplied:
        ++s.blame_rows_applied;
        break;
      case EventKind::kScoreRead:
        ++s.score_reads;
        break;
      case EventKind::kExpelRequest:
        ++s.expel_requests;
        break;
      case EventKind::kExpelVote:
        ++s.expel_votes;
        if (r.detail != 0) ++s.expel_agree_votes;
        break;
      case EventKind::kExpelCommit:
        ++s.expel_commits;
        break;
      case EventKind::kExpulsionApplied:
        s.expelled = true;
        break;
      default:
        break;
    }
  }
  return s;
}

std::string explain(const TraceRing& ring, NodeId node) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== forensic report: node %u ===\n", node.value());
  out += line;
  if (ring.dropped() > 0) {
    std::snprintf(line, sizeof(line),
                  "(ring wrapped: %llu oldest records overwritten — the "
                  "chain below may start mid-story)\n",
                  static_cast<unsigned long long>(ring.dropped()));
    out += line;
  }
  const std::uint32_t id = node.value();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (relevant(ring[i], id)) format_line(out, ring[i]);
  }
  const ExplainSummary s = summarize(ring, node);
  std::snprintf(line, sizeof(line),
                "--- summary: %llu verdicts, %llu blames (total value "
                "%.3f), %llu manager rows, %llu score reads\n",
                static_cast<unsigned long long>(s.verdicts),
                static_cast<unsigned long long>(s.blames_emitted_against),
                s.blame_value_against,
                static_cast<unsigned long long>(s.blame_rows_applied),
                static_cast<unsigned long long>(s.score_reads));
  out += line;
  std::snprintf(line, sizeof(line),
                "--- expulsion: %llu requests, %llu/%llu agreeing ballots, "
                "%llu manager commits -> %s\n",
                static_cast<unsigned long long>(s.expel_requests),
                static_cast<unsigned long long>(s.expel_agree_votes),
                static_cast<unsigned long long>(s.expel_votes),
                static_cast<unsigned long long>(s.expel_commits),
                s.expelled ? "EXPELLED" : "not expelled");
  out += line;
  return out;
}

}  // namespace lifting::obs

#ifndef LIFTING_OBS_TRACE_HPP
#define LIFTING_OBS_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

/// Flight recorder (DESIGN.md §13): structured protocol tracing for the
/// simulator and the wire deployment.
///
/// Every instrumented component holds a nullable `obs::Recorder*` — the
/// disarmed default. A null recorder constructs nothing, draws nothing and
/// allocates nothing: the instrumentation is one pointer test per event,
/// so fixed-seed goldens are byte-identical with the subsystem compiled in
/// (tests/test_obs.cpp pins a traced-vs-untraced digest equality).
///
/// Armed, the recorder appends fixed-size POD records into a TraceRing —
/// a bounded circular buffer allocated exactly once at arming (§9
/// discipline: zero allocation per record, oldest records overwritten
/// when the ring wraps). Records carry virtual time (sim::Simulator::now),
/// which the wire deployment slaves to the steady clock, so per-node dumps
/// merge by timestamp (tools/lifting_trace.cpp).

namespace lifting::obs {

/// One trace record kind per instrumented seam event.
enum class EventKind : std::uint8_t {
  // ---- gossip engine phase transitions (src/gossip/engine.cpp)
  kProposeSent,      // actor proposed; evidence=period, extra=chunks
  kProposeReceived,  // subject=proposer; evidence=period, extra=chunks
  kRequestSent,      // subject=proposer; evidence=period, extra=requested
  kServeReceived,    // subject=server; evidence=chunk id, detail=1 if dup
  kChunksServed,     // subject=requester; evidence=period, extra=served
  kAckReceived,      // subject=acker; evidence=ack period, extra=partners

  // ---- verifier verdicts (src/lifting/verifier.cpp)
  kVerdictUnserved,   // direct verification; evidence=period, extra=missing
  kVerdictNoAck,      // missing/uncovered ack; evidence=serve period
  kVerdictFanout,     // fanout shortfall; evidence=ack period
  kVerdictTestimony,  // confirm round judged; extra=(yes<<8)|no
  kConfirmRound,      // confirm round started; extra=witnesses polled

  // ---- local-history audits (src/lifting/agent.cpp, auditor hooks)
  kAuditServed,  // subject asked actor for history; evidence=audit id
  kAuditReport,  // auditor verdict; detail bits: 1 fanout, 2 fanin, 4 rate

  // ---- blame rows (agent emission, manager rows, ground-truth ledger)
  kBlameEmitted,  // actor blames subject; value, detail=BlameReason
  kBlameApplied,  // manager row mutated; evidence=blamer id
  kBlameLedger,   // ground-truth ledger row (post-departure reclassified)

  // ---- score reads and the expulsion protocol
  kScoreRead,         // actor reads subject's score; evidence=query id
  kExpelRequest,      // actor asks managers to expel; value=observed score
  kExpelVote,         // actor's ballot about subject; detail=agree
  kExpelCommit,       // manager marked subject expelled; detail=from_audit
  kExpulsionApplied,  // deployment applied the expulsion (membership)

  // ---- membership machinery
  kHandoff,   // manager row migrated; actor=replacement, evidence=departed
  kRpsMerge,  // shuffle exchange merged; subject=peer, extra=entries

  // ---- adversary decisions and injected faults
  kAdversaryTick,   // detail=1 freeriding, 2 probe sent, 4 flee, 8 rejoin
  kFaultDrop,       // detail=1 burst, 2 partition; extra=message kind
  kFaultDuplicate,  // extra=message kind
  kFaultDelay,      // extra=message kind
  kFaultReorder,    // extra=message kind
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kFaultReorder) + 1;

/// Short stable name of the kind (trace JSON, forensic reports).
[[nodiscard]] const char* kind_name(EventKind kind) noexcept;

/// Seam category of the kind: "engine", "verdict", "audit", "blame",
/// "expel", "handoff", "rps", "adversary" or "fault". The per-seam
/// coverage requirement of the traced loopback smoke counts these.
[[nodiscard]] const char* kind_category(EventKind kind) noexcept;

/// One fixed-size POD record (32 bytes). Field semantics are per-kind
/// (see EventKind comments); unused fields are zero.
struct TraceRecord {
  std::int64_t at_us = 0;     ///< virtual time, µs since the sim epoch
  std::uint32_t actor = 0;    ///< node performing the event
  std::uint32_t subject = 0;  ///< node acted upon (== actor when self-only)
  std::uint64_t evidence = 0; ///< period / chunk / audit id / query id
  float value = 0.0f;         ///< blame value / score, when meaningful
  EventKind kind = EventKind::kProposeSent;
  std::uint8_t detail = 0;    ///< reason / flags / ballot
  std::uint16_t extra = 0;    ///< small counts (chunks, witnesses, …)
};
static_assert(sizeof(TraceRecord) == 32, "trace records are 32-byte POD");

/// Bounded circular record store. arm() performs the single allocation;
/// append() is O(1), never allocates and overwrites the oldest record
/// once the ring is full (dropped() counts the overwritten ones).
class TraceRing {
 public:
  TraceRing() = default;

  void arm(std::size_t capacity) {
    LIFTING_ASSERT(capacity > 0, "TraceRing capacity must be positive");
    buf_.assign(capacity, TraceRecord{});
    head_ = 0;
    size_ = 0;
    total_ = 0;
  }
  [[nodiscard]] bool armed() const noexcept { return !buf_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Records ever appended, including those the wrap overwrote.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - size_;
  }

  void append(const TraceRecord& record) noexcept {
    LIFTING_ASSERT(armed(), "append on a disarmed TraceRing");
    buf_[wrap(head_ + size_)] = record;
    if (size_ == buf_.size()) {
      head_ = wrap(head_ + 1);  // overwrite: drop the oldest
    } else {
      ++size_;
    }
    ++total_;
  }

  /// Oldest-first access: (*this)[0] is the earliest retained record.
  [[nodiscard]] const TraceRecord& operator[](std::size_t i) const noexcept {
    LIFTING_ASSERT(i < size_, "TraceRing index out of range");
    return buf_[wrap(head_ + i)];
  }

  /// Forgets the records; the buffer (and arming) stays.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    total_ = 0;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i < buf_.size() ? i : i - buf_.size();
  }

  std::vector<TraceRecord> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// The armed end of the flight recorder: stamps records with the virtual
/// clock and appends them to the ring. Components reference it through a
/// nullable pointer — constructing a Recorder is the arming act, owned by
/// the deployment (Experiment::enable_trace / NodeHost::enable_trace).
class Recorder {
 public:
  Recorder(const sim::Simulator& sim, std::size_t capacity) : sim_(sim) {
    ring_.arm(capacity);
  }

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void record(EventKind kind, NodeId actor, NodeId subject,
              std::uint64_t evidence = 0, double value = 0.0,
              std::uint8_t detail = 0, std::uint16_t extra = 0) noexcept {
    TraceRecord r;
    r.at_us = sim_.now().time_since_epoch().count();
    r.actor = actor.value();
    r.subject = subject.value();
    r.evidence = evidence;
    r.value = static_cast<float>(value);
    r.kind = kind;
    r.detail = detail;
    r.extra = extra;
    ring_.append(r);
  }

  [[nodiscard]] const TraceRing& ring() const noexcept { return ring_; }
  [[nodiscard]] TraceRing& ring() noexcept { return ring_; }

 private:
  const sim::Simulator& sim_;
  TraceRing ring_;
};

}  // namespace lifting::obs

#endif  // LIFTING_OBS_TRACE_HPP

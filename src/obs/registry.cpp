#include "obs/registry.hpp"

#include "common/assert.hpp"

namespace lifting::obs {

Registry::Entry& Registry::slot(std::string_view name, Kind kind) {
  for (auto& e : entries_) {
    if (e.name == name) {
      LIFTING_ASSERT(e.kind == kind, "registry name reused across kinds");
      return e;
    }
  }
  auto& e = entries_.emplace_back();
  e.name.assign(name);
  e.kind = kind;
  return e;
}

}  // namespace lifting::obs

#ifndef LIFTING_OBS_EXPORT_HPP
#define LIFTING_OBS_EXPORT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

/// Trace exporters (DESIGN.md §13).
///
/// Two formats share the TraceRecord layout:
///  - Chrome `trace_event` JSON (catapult / chrome://tracing / Perfetto):
///    one instant event per record, pid = acting node, categories = seam
///    categories, so a deployment's timeline renders per-node rows.
///  - A compact binary dump: a 16-byte header followed by the raw 32-byte
///    records. This is what each `lifting_node` process writes at
///    shutdown; `lifting_trace` merges per-node dumps by timestamp into
///    one Chrome JSON timeline.

namespace lifting::obs {

/// Binary dump header magic ("LFTR") and current format version.
inline constexpr std::uint32_t kDumpMagic = 0x5254464CU;
inline constexpr std::uint32_t kDumpVersion = 1;

/// Node id recorded in a dump that covers a whole simulated deployment
/// rather than a single wire process.
inline constexpr std::uint32_t kDumpWholeDeployment = 0xFFFFFFFFU;

/// Snapshots the retained records oldest-first.
[[nodiscard]] std::vector<TraceRecord> to_vector(const TraceRing& ring);

/// Writes `header node` + the records to `path`. Returns false on I/O
/// failure (reported, not thrown — exporters run at teardown).
bool write_binary_dump(const std::string& path,
                       const std::vector<TraceRecord>& records,
                       std::uint32_t node);
bool write_binary_dump(const std::string& path, const TraceRing& ring,
                       std::uint32_t node);

/// Appends the dump's records to `out` (order preserved); `node` receives
/// the header's node id when non-null. Returns false on missing file,
/// bad magic or unsupported version.
bool read_binary_dump(const std::string& path,
                      std::vector<TraceRecord>& out,
                      std::uint32_t* node = nullptr);

/// Sorts records by (timestamp, actor, kind) — the canonical merge order
/// of multi-node dumps. Stable, so same-key records keep input order.
void sort_for_merge(std::vector<TraceRecord>& records);

/// Writes the records as one Chrome trace_event JSON object
/// (`{"traceEvents": [...]}`), timestamps in microseconds.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceRecord>& records);

}  // namespace lifting::obs

#endif  // LIFTING_OBS_EXPORT_HPP

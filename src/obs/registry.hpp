#ifndef LIFTING_OBS_REGISTRY_HPP
#define LIFTING_OBS_REGISTRY_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

/// Unified metrics registry (DESIGN.md §13): one named home for the
/// counters that used to live scattered across KindWireStats, the agents'
/// audit-channel totals, FaultInjector::Stats and the engines' duplicate
/// counters. Deployments *fold into* a Registry (Experiment::
/// collect_metrics, lifting_node's stat emitter) — the hot-path structs
/// stay as they are; the registry is the reporting surface: self-
/// describing bench JSON rows and the periodic mid-run STAT lines the
/// wire protocol streams.
///
/// Entries live in a deque so references stay stable across registration
/// (the sim::MetricsRegistry idiom); iteration is registration order,
/// which keeps every exported listing deterministic.

namespace lifting::obs {

/// Fixed-bucket log2 histogram: bucket i counts observations in
/// [2^(i-1), 2^i) (bucket 0 is [0, 1)). Bounded, allocation-free.
struct Histogram {
  std::array<std::uint64_t, 32> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;

  void observe(double v) noexcept {
    ++count;
    sum += v;
    std::size_t b = 0;
    for (double x = v; x >= 1.0 && b + 1 < buckets.size(); x /= 2.0) ++b;
    ++buckets[b];
  }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  void reset() noexcept {
    buckets.fill(0);
    count = 0;
    sum = 0.0;
  }
};

class Registry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram histogram;
  };

  /// Monotone event count. Registered on first use; later calls with the
  /// same name return the same (stable) slot.
  [[nodiscard]] std::uint64_t& counter(std::string_view name) {
    return slot(name, Kind::kCounter).counter;
  }
  /// Point-in-time value (timers, rates, sizes).
  [[nodiscard]] double& gauge(std::string_view name) {
    return slot(name, Kind::kGauge).gauge;
  }
  [[nodiscard]] Histogram& histogram(std::string_view name) {
    return slot(name, Kind::kHistogram).histogram;
  }

  /// Sets a counter to an externally folded total (the collect_metrics
  /// pattern re-folds absolute totals rather than accumulating deltas).
  void set_counter(std::string_view name, std::uint64_t value) {
    counter(name) = value;
  }
  void set_gauge(std::string_view name, double value) { gauge(name) = value; }

  [[nodiscard]] const std::deque<Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Zeroes every value; names and registration order survive.
  void reset_values() noexcept {
    for (auto& e : entries_) {
      e.counter = 0;
      e.gauge = 0.0;
      e.histogram.reset();
    }
  }

 private:
  [[nodiscard]] Entry& slot(std::string_view name, Kind kind);

  std::deque<Entry> entries_;
};

/// Scoped wall-clock phase timer: on destruction writes the elapsed
/// seconds into `registry.gauge(name)` and observes it in
/// `registry.histogram(name + "_hist")`. Reporting-side only (benches,
/// tools) — never inside deterministic protocol code.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    registry_.gauge(name_) = seconds;
    registry_.histogram(name_ + "_hist").observe(seconds);
  }

 private:
  Registry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lifting::obs

#endif  // LIFTING_OBS_REGISTRY_HPP

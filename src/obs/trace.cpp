#include "obs/trace.hpp"

namespace lifting::obs {

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kProposeSent: return "propose_sent";
    case EventKind::kProposeReceived: return "propose_received";
    case EventKind::kRequestSent: return "request_sent";
    case EventKind::kServeReceived: return "serve_received";
    case EventKind::kChunksServed: return "chunks_served";
    case EventKind::kAckReceived: return "ack_received";
    case EventKind::kVerdictUnserved: return "verdict_unserved";
    case EventKind::kVerdictNoAck: return "verdict_no_ack";
    case EventKind::kVerdictFanout: return "verdict_fanout";
    case EventKind::kVerdictTestimony: return "verdict_testimony";
    case EventKind::kConfirmRound: return "confirm_round";
    case EventKind::kAuditServed: return "audit_served";
    case EventKind::kAuditReport: return "audit_report";
    case EventKind::kBlameEmitted: return "blame_emitted";
    case EventKind::kBlameApplied: return "blame_applied";
    case EventKind::kBlameLedger: return "blame_ledger";
    case EventKind::kScoreRead: return "score_read";
    case EventKind::kExpelRequest: return "expel_request";
    case EventKind::kExpelVote: return "expel_vote";
    case EventKind::kExpelCommit: return "expel_commit";
    case EventKind::kExpulsionApplied: return "expulsion_applied";
    case EventKind::kHandoff: return "manager_handoff";
    case EventKind::kRpsMerge: return "rps_merge";
    case EventKind::kAdversaryTick: return "adversary_tick";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kFaultDuplicate: return "fault_duplicate";
    case EventKind::kFaultDelay: return "fault_delay";
    case EventKind::kFaultReorder: return "fault_reorder";
  }
  return "unknown";
}

const char* kind_category(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kProposeSent:
    case EventKind::kProposeReceived:
    case EventKind::kRequestSent:
    case EventKind::kServeReceived:
    case EventKind::kChunksServed:
    case EventKind::kAckReceived:
      return "engine";
    case EventKind::kVerdictUnserved:
    case EventKind::kVerdictNoAck:
    case EventKind::kVerdictFanout:
    case EventKind::kVerdictTestimony:
    case EventKind::kConfirmRound:
      return "verdict";
    case EventKind::kAuditServed:
    case EventKind::kAuditReport:
      return "audit";
    case EventKind::kBlameEmitted:
    case EventKind::kBlameApplied:
    case EventKind::kBlameLedger:
      return "blame";
    case EventKind::kScoreRead:
    case EventKind::kExpelRequest:
    case EventKind::kExpelVote:
    case EventKind::kExpelCommit:
    case EventKind::kExpulsionApplied:
      return "expel";
    case EventKind::kHandoff:
      return "handoff";
    case EventKind::kRpsMerge:
      return "rps";
    case EventKind::kAdversaryTick:
      return "adversary";
    case EventKind::kFaultDrop:
    case EventKind::kFaultDuplicate:
    case EventKind::kFaultDelay:
    case EventKind::kFaultReorder:
      return "fault";
  }
  return "unknown";
}

}  // namespace lifting::obs

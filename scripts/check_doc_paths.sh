#!/bin/sh
# Doc drift check: every src/tests/bench/examples path cited in the
# project's markdown must exist in the tree, so the README / DESIGN /
# ROADMAP cannot silently rot as code moves. Run from the repo root.
#
# Usage: scripts/check_doc_paths.sh [file.md ...]
#   default files: README.md DESIGN.md ROADMAP.md

set -eu

files="${*:-README.md DESIGN.md ROADMAP.md}"
status=0

for doc in $files; do
  [ -f "$doc" ] || { echo "check_doc_paths: missing doc $doc" >&2; status=1; continue; }
  # Cited paths: src/... tests/... bench/... examples/... scripts/...
  # Trailing punctuation (sentence periods, quotes, parens) is stripped;
  # a citation may name a directory (src/lifting/) or a file.
  paths=$(grep -oE '(src|tests|bench|examples|scripts|tools)/[A-Za-z0-9_./-]+' "$doc" \
            | sed -e 's/[.,;:)]*$//' | sort -u)
  for path in $paths; do
    if [ ! -e "$path" ]; then
      echo "check_doc_paths: $doc cites missing path: $path" >&2
      status=1
    fi
  done
done

# Subsystem coverage: the architecture docs must actually cite the
# subsystems the tree ships (a new layer that no doc mentions is drift in
# the other direction). One record per line: "subsystem-dir doc ...";
# each record only applies to docs named on this run.
while read -r subsystem docs; do
  [ -n "$subsystem" ] || continue
  for doc in $docs; do
    case " $files " in
      *" $doc "*)
        if ! grep -q "$subsystem" "$doc"; then
          echo "check_doc_paths: $doc never cites $subsystem (subsystem undocumented)" >&2
          status=1
        fi
        ;;
    esac
  done
done <<REQUIRED_CITATIONS
src/adversary/ DESIGN.md README.md
src/net/ DESIGN.md README.md
src/faults/ DESIGN.md README.md
src/membership/ DESIGN.md README.md
src/obs/ DESIGN.md README.md
REQUIRED_CITATIONS

if [ "$status" -eq 0 ]; then
  echo "check_doc_paths: all cited paths exist"
fi
exit "$status"

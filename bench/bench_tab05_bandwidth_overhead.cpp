/// Table 5 — practical bandwidth overhead of cross-checking and blaming,
/// for p_dcc ∈ {0, 0.5, 1} and streams of {674, 1082, 2036} kbps.
///
/// Paper (300 PlanetLab nodes):
///   674 kbps:  1.07% / 4.53% / 8.01%
///   1082 kbps: 0.69% / 3.51% / 5.04%
///   2036 kbps: 0.38% / 1.69% / 2.76%
/// Shape to reproduce: overhead grows with p_dcc (but is nonzero at 0 —
/// acks are always sent) and shrinks with the stream rate.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

double run(double bitrate, double p_dcc) {
  auto cfg = lifting::runtime::ScenarioConfig::planetlab();
  cfg.nodes = 300;
  cfg.duration = lifting::seconds(30.0);
  cfg.stream.duration = lifting::seconds(28.0);
  cfg.stream.bitrate_bps = bitrate;
  // Constant 10 chunks/s across rates (chunk size scales with bitrate),
  // as in a fixed-period streaming system.
  cfg.stream.chunk_payload_bytes =
      static_cast<std::uint32_t>(bitrate / 8.0 / 10.0);
  cfg.lifting.p_dcc = p_dcc;
  cfg.weak_fraction = 0.0;
  cfg.freerider_fraction = 0.0;
  lifting::runtime::Experiment ex(cfg);
  ex.run();
  return ex.overhead().verification_ratio();
}

}  // namespace

int main() {
  std::printf("=== Table 5: cross-checking and blaming overhead ===\n");
  std::printf("(300 nodes, honest, 30 s; %% of dissemination bytes)\n\n");

  const std::vector<double> rates{674'000, 1'082'000, 2'036'000};
  const std::vector<double> pdccs{0.0, 0.5, 1.0};
  std::vector<std::vector<double>> ratio(rates.size(),
                                         std::vector<double>(pdccs.size()));
  {
    std::vector<std::jthread> workers;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      for (std::size_t j = 0; j < pdccs.size(); ++j) {
        workers.emplace_back(
            [&, i, j] { ratio[i][j] = run(rates[i], pdccs[j]); });
      }
    }
  }

  lifting::TextTable table(
      {"stream", "p_dcc=0", "p_dcc=0.5", "p_dcc=1", "paper (0/.5/1)"});
  const std::vector<std::string> paper{"1.07% / 4.53% / 8.01%",
                                       "0.69% / 3.51% / 5.04%",
                                       "0.38% / 1.69% / 2.76%"};
  for (std::size_t i = 0; i < rates.size(); ++i) {
    table.add_row({lifting::TextTable::num(rates[i] / 1000.0, 0) + " kbps",
                   lifting::TextTable::num(ratio[i][0] * 100, 2) + "%",
                   lifting::TextTable::num(ratio[i][1] * 100, 2) + "%",
                   lifting::TextTable::num(ratio[i][2] * 100, 2) + "%",
                   paper[i]});
  }
  table.print();

  std::printf("\nshape checks: each row increases left-to-right (more "
              "cross-checking);\neach column decreases top-to-bottom "
              "(verification cost amortizes over a\nfatter stream).\n");
  return 0;
}

/// Figure 13 — distribution of the entropy of nodes' histories under a
/// full-membership uniform partner selection: 10,000 nodes, histories of
/// n_h·f = 600 entries (n_h = 50, f = 12).
///
/// Paper: fanout entropy in [9.11, 9.21] (max log2(600) = 9.23); fanin
/// entropy wider, [8.98, 9.34]; γ = 8.95 wrongfully expels ~nobody.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "membership/directory.hpp"
#include "membership/sampler.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace lifting;

  const std::uint32_t n = 10'000;
  const std::uint32_t nh = 50;
  const std::uint32_t fanout = 12;
  const double gamma = 8.95;

  std::printf("=== Figure 13: entropy of node histories (n=%u, n_h=%u, "
              "f=%u) ===\n\n", n, nh, fanout);

  membership::Directory directory(n);
  Pcg32 rng{20130};

  // Simulate nh rounds of uniform selection for every node, recording both
  // each node's fanout multiset and the global fanin (who picked me).
  std::vector<std::vector<std::uint64_t>> fanin_counts(n);
  stats::Summary fanout_entropy;
  stats::Summary fanin_entropy;
  stats::Histogram fanout_hist(8.8, 9.4, 48);
  stats::Histogram fanin_hist(8.8, 9.4, 48);

  // Fanin counts: node -> map(picker -> count). Vectors of pairs would be
  // heavy; reuse a flat counter keyed by picker id per target.
  std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> fanin(n);

  std::size_t over_gamma_fanout = 0;
  for (std::uint32_t node = 0; node < n; ++node) {
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    for (std::uint32_t round = 0; round < nh; ++round) {
      const auto partners = membership::sample_uniform(
          rng, directory, NodeId{node}, fanout);
      for (const auto p : partners) {
        ++counts[p.value()];
        ++fanin[p.value()][node];
      }
    }
    std::vector<std::uint64_t> flat;
    flat.reserve(counts.size());
    for (const auto& [id, c] : counts) flat.push_back(c);
    const double h = stats::shannon_entropy(flat);
    fanout_entropy.add(h);
    fanout_hist.add(h);
    if (h >= gamma) ++over_gamma_fanout;
  }

  std::size_t over_gamma_fanin = 0;
  for (std::uint32_t node = 0; node < n; ++node) {
    std::vector<std::uint64_t> flat;
    flat.reserve(fanin[node].size());
    for (const auto& [id, c] : fanin[node]) flat.push_back(c);
    const double h = stats::shannon_entropy(flat);
    fanin_entropy.add(h);
    fanin_hist.add(h);
    if (h >= gamma) ++over_gamma_fanin;
  }

  std::printf("(a) fanout entropy: range [%.3f, %.3f], mean %.3f\n",
              fanout_entropy.min(), fanout_entropy.max(),
              fanout_entropy.mean());
  std::printf("    paper: [9.11, 9.21], hard max log2(600)=%.3f\n",
              std::log2(600.0));
  std::printf("    expected (collision model): %.3f\n\n",
              stats::expected_uniform_entropy(n, nh * fanout));
  std::printf("%s\n", fanout_hist.render(40).c_str());

  std::printf("(b) fanin entropy: range [%.3f, %.3f], mean %.3f\n",
              fanin_entropy.min(), fanin_entropy.max(), fanin_entropy.mean());
  std::printf("    paper: [8.98, 9.34] (|F'_h| varies around n_h·f)\n\n");
  std::printf("%s\n", fanin_hist.render(40).c_str());

  std::printf("honest nodes passing gamma=%.2f: fanout %.2f%%, fanin "
              "%.2f%%  (paper: ~100%%)\n",
              gamma, 100.0 * static_cast<double>(over_gamma_fanout) / n,
              100.0 * static_cast<double>(over_gamma_fanin) / n);
  return 0;
}

/// Figure 13 — distribution of the entropy of nodes' histories under a
/// full-membership uniform partner selection: 10,000 nodes, histories of
/// n_h·f = 600 entries (n_h = 50, f = 12).
///
/// Paper: fanout entropy in [9.11, 9.21] (max log2(600) = 9.23); fanin
/// entropy wider, [8.98, 9.34]; γ = 8.95 wrongfully expels ~nobody.
///
/// Sharded over the ParallelRunner: each task simulates partner selection
/// for a fixed slice of the pickers from its own RNG stream. Fanout
/// entropy is a per-picker quantity and reduces trivially; fanin count
/// lists merge by concatenation (a picker appears in exactly one shard, so
/// per-target count multisets are disjoint across shards) and are sorted
/// before the entropy fold, making every printed number independent of the
/// thread count AND of unordered-map iteration order.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "membership/directory.hpp"
#include "membership/sampler.hpp"
#include "runtime/runner.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace lifting;

  const std::uint32_t n = 10'000;
  const std::uint32_t nh = 50;
  const std::uint32_t fanout = 12;
  const double gamma = 8.95;

  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== Figure 13: entropy of node histories (n=%u, n_h=%u, "
              "f=%u) [build=%s threads=%u] ===\n\n",
              n, nh, fanout, build_type(), runner.threads());

  constexpr std::size_t kShards = 16;  // fixed: results don't follow threads
  struct Partial {
    stats::Summary fanout_entropy;
    stats::Histogram fanout_hist{8.8, 9.4, 48};
    std::size_t over_gamma_fanout = 0;
    /// fanin_counts[target] = this shard's per-picker contact counts.
    std::vector<std::vector<std::uint64_t>> fanin_counts;
  };
  const auto partials = runner.map<Partial>(kShards, [&](std::size_t shard) {
    Partial p;
    p.fanin_counts.resize(n);
    membership::Directory directory(n);
    Pcg32 rng = derive_rng(20130, shard);
    std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> fanin(n);
    const auto slice = runtime::shard_range(shard, kShards, n);
    for (auto node = static_cast<std::uint32_t>(slice.lo);
         node < static_cast<std::uint32_t>(slice.hi); ++node) {
      std::unordered_map<std::uint32_t, std::uint64_t> counts;
      for (std::uint32_t round = 0; round < nh; ++round) {
        const auto partners = membership::sample_uniform(
            rng, directory, NodeId{node}, fanout);
        for (const auto partner : partners) {
          ++counts[partner.value()];
          ++fanin[partner.value()][node];
        }
      }
      std::vector<std::uint64_t> flat;
      flat.reserve(counts.size());
      for (const auto& [id, c] : counts) flat.push_back(c);
      std::sort(flat.begin(), flat.end());  // iteration-order independence
      const double h = stats::shannon_entropy(flat);
      p.fanout_entropy.add(h);
      p.fanout_hist.add(h);
      if (h >= gamma) ++p.over_gamma_fanout;
    }
    for (std::uint32_t target = 0; target < n; ++target) {
      auto& flat = p.fanin_counts[target];
      flat.reserve(fanin[target].size());
      for (const auto& [picker, c] : fanin[target]) flat.push_back(c);
    }
    return p;
  });

  // ---- task-ordered reduce
  stats::Summary fanout_entropy;
  stats::Histogram fanout_hist(8.8, 9.4, 48);
  std::size_t over_gamma_fanout = 0;
  for (const auto& p : partials) {
    fanout_entropy.merge(p.fanout_entropy);
    fanout_hist.merge(p.fanout_hist);
    over_gamma_fanout += p.over_gamma_fanout;
  }

  stats::Summary fanin_entropy;
  stats::Histogram fanin_hist(8.8, 9.4, 48);
  std::size_t over_gamma_fanin = 0;
  std::vector<std::uint64_t> merged;
  for (std::uint32_t target = 0; target < n; ++target) {
    merged.clear();
    for (const auto& p : partials) {
      merged.insert(merged.end(), p.fanin_counts[target].begin(),
                    p.fanin_counts[target].end());
    }
    std::sort(merged.begin(), merged.end());  // deterministic fold order
    const double h = stats::shannon_entropy(merged);
    fanin_entropy.add(h);
    fanin_hist.add(h);
    if (h >= gamma) ++over_gamma_fanin;
  }

  std::printf("(a) fanout entropy: range [%.3f, %.3f], mean %.3f\n",
              fanout_entropy.min(), fanout_entropy.max(),
              fanout_entropy.mean());
  std::printf("    paper: [9.11, 9.21], hard max log2(600)=%.3f\n",
              std::log2(600.0));
  std::printf("    expected (collision model): %.3f\n\n",
              stats::expected_uniform_entropy(n, nh * fanout));
  std::printf("%s\n", fanout_hist.render(40).c_str());

  std::printf("(b) fanin entropy: range [%.3f, %.3f], mean %.3f\n",
              fanin_entropy.min(), fanin_entropy.max(), fanin_entropy.mean());
  std::printf("    paper: [8.98, 9.34] (|F'_h| varies around n_h·f)\n\n");
  std::printf("%s\n", fanin_hist.render(40).c_str());

  std::printf("honest nodes passing gamma=%.2f: fanout %.2f%%, fanin "
              "%.2f%%  (paper: ~100%%)\n",
              gamma, 100.0 * static_cast<double>(over_gamma_fanout) / n,
              100.0 * static_cast<double>(over_gamma_fanin) / n);
  return 0;
}

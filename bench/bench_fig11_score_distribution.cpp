/// Figure 11 — distribution of normalized scores in the presence of
/// freeriders: 10,000 nodes, 1,000 of them freeriding with
/// Δ = (0.1, 0.1, 0.1), after r = 50 gossip periods.
///
/// Paper: the pdf splits into two disjoint modes (freeriders left, honest
/// right); at η = -9.75 the cdf yields high detection with ~1% false
/// positives.

#include <cstdio>

#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace lifting;
  using namespace lifting::analysis;

  const ProtocolModel model{0.07, 12, 4, 1.0};
  const std::uint32_t r = 50;
  const double eta = -9.75;
  const auto degree = FreeriderDegree::uniform(0.1);

  std::printf("=== Figure 11: normalized scores with 1000/10000 freeriders "
              "===\n");
  std::printf("delta=(0.1,0.1,0.1), r=%u periods, eta=%.2f\n\n", r, eta);

  BlameSampler sampler(model);
  Pcg32 rng{20111};
  stats::Empirical honest;
  stats::Empirical cheats;
  stats::Histogram pdf_honest(-50.0, 10.0, 60);
  stats::Histogram pdf_cheats(-50.0, 10.0, 60);
  for (int i = 0; i < 9000; ++i) {
    const double s = sampler.sample_score(rng, FreeriderDegree{}, r);
    honest.add(s);
    pdf_honest.add(s);
  }
  for (int i = 0; i < 1000; ++i) {
    const double s = sampler.sample_score(rng, degree, r);
    cheats.add(s);
    pdf_cheats.add(s);
  }

  std::printf("honest:    mean around %.2f, 1%%..99%% = [%.2f, %.2f]\n",
              honest.quantile(0.5), honest.quantile(0.01),
              honest.quantile(0.99));
  std::printf("freerider: mean around %.2f, 1%%..99%% = [%.2f, %.2f]\n\n",
              cheats.quantile(0.5), cheats.quantile(0.01),
              cheats.quantile(0.99));

  std::printf("(a) pdf — honest nodes:\n%s\n", pdf_honest.render(40).c_str());
  std::printf("(a) pdf — freeriders:\n%s\n", pdf_cheats.render(40).c_str());

  std::printf("(b) cdf at selected scores:\n");
  TextTable table({"score", "cdf honest", "cdf freeriders"});
  for (const double x : {-40.0, -30.0, -20.0, -15.0, -9.75, -5.0, 0.0, 5.0}) {
    table.add_row({TextTable::num(x, 2), TextTable::num(honest.cdf(x), 4),
                   TextTable::num(cheats.cdf(x), 4)});
  }
  table.print();

  std::printf("\nat eta=%.2f: detection alpha=%.3f, false positives "
              "beta=%.4f\n",
              eta, cheats.cdf_strict(eta), honest.cdf_strict(eta));
  std::printf("paper: two disjoint modes separated by a gap at the "
              "threshold.\n");
  return 0;
}

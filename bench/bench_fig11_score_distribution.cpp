/// Figure 11 — distribution of normalized scores in the presence of
/// freeriders: 10,000 nodes, 1,000 of them freeriding with
/// Δ = (0.1, 0.1, 0.1), after r = 50 gossip periods.
///
/// Paper: the pdf splits into two disjoint modes (freeriders left, honest
/// right); at η = -9.75 the cdf yields high detection with ~1% false
/// positives.
///
/// Sharded over the ParallelRunner: each task samples a fixed slice of the
/// honest and freeriding populations from its own RNG stream, partials
/// merge in task order — identical output at any --threads value.

#include <cstdio>

#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/runner.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  using namespace lifting;
  using namespace lifting::analysis;

  const ProtocolModel model{0.07, 12, 4, 1.0};
  const std::uint32_t r = 50;
  const double eta = -9.75;
  const auto degree = FreeriderDegree::uniform(0.1);

  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== Figure 11: normalized scores with 1000/10000 freeriders "
              "===\n");
  std::printf("delta=(0.1,0.1,0.1), r=%u periods, eta=%.2f [build=%s "
              "threads=%u]\n\n",
              r, eta, build_type(), runner.threads());

  constexpr int kHonest = 9000;
  constexpr int kCheats = 1000;
  constexpr std::size_t kShards = 16;  // fixed: results don't follow threads
  struct Partial {
    std::vector<double> honest;
    std::vector<double> cheats;
  };
  const auto partials = runner.map<Partial>(kShards, [&](std::size_t shard) {
    Partial p;
    BlameSampler sampler(model);
    Pcg32 rng = derive_rng(20111, shard);
    const auto honest_slice = runtime::shard_range(shard, kShards, kHonest);
    for (std::size_t i = honest_slice.lo; i < honest_slice.hi; ++i) {
      p.honest.push_back(sampler.sample_score(rng, FreeriderDegree{}, r));
    }
    const auto cheat_slice = runtime::shard_range(shard, kShards, kCheats);
    for (std::size_t i = cheat_slice.lo; i < cheat_slice.hi; ++i) {
      p.cheats.push_back(sampler.sample_score(rng, degree, r));
    }
    return p;
  });

  stats::Empirical honest;
  stats::Empirical cheats;
  stats::Histogram pdf_honest(-50.0, 10.0, 60);
  stats::Histogram pdf_cheats(-50.0, 10.0, 60);
  for (const auto& p : partials) {  // task order: deterministic reduce
    for (const double s : p.honest) {
      honest.add(s);
      pdf_honest.add(s);
    }
    for (const double s : p.cheats) {
      cheats.add(s);
      pdf_cheats.add(s);
    }
  }

  std::printf("honest:    mean around %.2f, 1%%..99%% = [%.2f, %.2f]\n",
              honest.quantile(0.5), honest.quantile(0.01),
              honest.quantile(0.99));
  std::printf("freerider: mean around %.2f, 1%%..99%% = [%.2f, %.2f]\n\n",
              cheats.quantile(0.5), cheats.quantile(0.01),
              cheats.quantile(0.99));

  std::printf("(a) pdf — honest nodes:\n%s\n", pdf_honest.render(40).c_str());
  std::printf("(a) pdf — freeriders:\n%s\n", pdf_cheats.render(40).c_str());

  std::printf("(b) cdf at selected scores:\n");
  TextTable table({"score", "cdf honest", "cdf freeriders"});
  for (const double x : {-40.0, -30.0, -20.0, -15.0, -9.75, -5.0, 0.0, 5.0}) {
    table.add_row({TextTable::num(x, 2), TextTable::num(honest.cdf(x), 4),
                   TextTable::num(cheats.cdf(x), 4)});
  }
  table.print();

  std::printf("\nat eta=%.2f: detection alpha=%.3f, false positives "
              "beta=%.4f\n",
              eta, cheats.cdf_strict(eta), honest.cdf_strict(eta));
  std::printf("paper: two disjoint modes separated by a gap at the "
              "threshold.\n");
  return 0;
}

/// Adaptive-adversary frontier — the adaptive analogue of Fig. 12. The
/// paper's detection/gain trade-off assumes *static* freeriders (one Δ for
/// the whole run); this bench runs every catalog strategy from
/// src/adversary/strategy.hpp through one fixed accountability scenario
/// (score policing + expulsion + manager/expulsion handoff + divergent
/// views + churn with an early honest-departure burst that pre-thins the
/// manager quorums) and prints one frontier row per strategy:
///
///   gain        realized upload-bandwidth gain: BehaviorSpec::gain()
///               integrated over the adversaries' present time
///   detection   committed expulsion by a manager majority (an indictment
///               outlives a departure — it blocks the rejoin), or present
///               at the end with a min-vote score below η
///   stayer blame  mean ledger blame per honest stayer (wrongful blame)
///
/// Monte-Carlo repetitions are sharded over a FIXED task grid on the
/// ParallelRunner (never threads()), with per-rep seeds from
/// derive_task_seed shared across cells (paired comparisons) and
/// task-ordered reduces, so the printed table is bit-identical at any
/// --threads value.
///
/// The second section is the whitewasher A/B the churn-resilient
/// accountability machinery exists for (ROADMAP's timed-departure
/// adversary): with manager handoff OFF, the pre-thinned quorums stay
/// broken — score reads about the whitewasher fall below min_score_replies
/// and expel votes cannot reach a majority of the (fixed-size) manager
/// row, so flee-before-the-commit + rejoin-with-fresh-scores wins and the
/// whitewasher must measurably beat the static freerider on
/// evasion-adjusted gain = gain x (1 - detection). With manager handoff +
/// expulsion handoff ON, every hole is promoted over and ledger rows
/// migrate, the expulsion pipeline completes during the lay-low window,
/// and the indictment latch must collapse that edge (exit 1 otherwise).
///
/// The third section is the membership-compromise axis (DESIGN.md §12):
/// the same detection question asked one layer down, where the adversary
/// attacks the random-peer-sampling substrate instead of the gossip
/// exchange. Every membership attack from src/adversary/membership.hpp
/// runs against both sampler variants (legacy and hardened) at two
/// colluder fractions over runtime::membership_frontier_config — colluding
/// freeriders whose blame silence only matters once poisoned views steer
/// partner selection into the coalition. Asserted A/B: under the legacy
/// sampler the view attacks must measurably degrade detection vs the
/// no-attack cell, and the hardened sampler must close most of that gap
/// (exit 1 otherwise). Same fixed-grid / paired-seed / task-ordered-reduce
/// construction, so this table is also bit-identical at any --threads.
///
/// Usage: bench_adversary_frontier [--threads N] [--reps N]
///                                 [--membership-only]  (CI smoke: skip the
///                                 catalog/whitewash sections)

#include <cstdio>
#include <cstring>
#include <vector>

#include "adversary/membership.hpp"
#include "adversary/strategy.hpp"
#include "common/build_info.hpp"
#include "common/table.hpp"
#include "membership/rps.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace lifting;

/// One cell of the fixed Monte-Carlo grid over the shared accountability
/// scenario (runtime::adversary_frontier_config — the same deployment
/// tests/test_adversary.cpp pins the A/B on).
struct Cell {
  const char* name;  ///< catalog name or "static"
  adversary::AdversaryConfig adversary;  ///< kNone = static baseline
  bool handoff_on = true;
  /// With handoff off: retiring incarnations push their manager rows into
  /// the rejoiner's fresh store (ScenarioConfig::carried_manager_store), so
  /// blame survives a bounce without any promotion machinery. Isolates the
  /// A/B: how much of the defended edge-collapse is blame conservation vs
  /// quorum repair.
  bool carried_store = false;
};

/// One repetition's measurements (means accumulate in task order).
struct Sample {
  double gain = 0.0;
  double detection = 0.0;
  double false_positive = 0.0;
  double stayer_blame = 0.0;
  double present_fraction = 0.0;
  double bounces = 0.0;
  double probes = 0.0;
  double expulsions = 0.0;
};

struct CellResult {
  Sample mean;
  std::uint32_t reps = 0;
  void add(const Sample& s) {
    ++reps;
    mean.gain += s.gain;
    mean.detection += s.detection;
    mean.false_positive += s.false_positive;
    mean.stayer_blame += s.stayer_blame;
    mean.present_fraction += s.present_fraction;
    mean.bounces += s.bounces;
    mean.probes += s.probes;
    mean.expulsions += s.expulsions;
  }
  void finalize() {
    if (reps == 0) return;
    const double r = static_cast<double>(reps);
    mean.gain /= r;
    mean.detection /= r;
    mean.false_positive /= r;
    mean.stayer_blame /= r;
    mean.present_fraction /= r;
    mean.bounces /= r;
    mean.probes /= r;
    mean.expulsions /= r;
  }
  [[nodiscard]] double adjusted_gain() const {
    return mean.gain * (1.0 - mean.detection);
  }
};

Sample measure(runtime::Experiment& ex) {
  Sample s;
  const double eta = ex.config().lifting.eta;
  std::size_t detected = 0;
  std::size_t adversaries = 0;
  for (const auto id : ex.freerider_ids()) {
    ++adversaries;
    // Caught = a manager majority committed the expulsion (the indictment
    // is latched — it blocks any rejoin, even when the victim slipped away
    // before the expulsion propagated), or present with a min-vote read
    // below η at the end.
    if (ex.majority_expelled(id) ||
        (!ex.is_departed(id) && ex.true_score(id) < eta)) {
      ++detected;
    }
  }
  s.detection = adversaries == 0 ? 0.0
                                 : static_cast<double>(detected) /
                                       static_cast<double>(adversaries);
  s.false_positive = ex.detection_at(eta).false_positive;
  s.stayer_blame = ex.honest_blame_split().stayer_mean();
  s.expulsions = static_cast<double>(ex.expulsions().size());
  if (ex.config().adversary.enabled()) {
    const auto adv = ex.adversary_stats();
    s.gain = adv.mean_realized_gain;
    s.present_fraction = adv.mean_present_fraction;
    s.bounces = static_cast<double>(adv.bounces);
    s.probes = static_cast<double>(adv.probes);
  } else {
    // Static baseline: full throttle while in the system. No controller
    // integrates presence over time, so approximate with the end-state
    // fraction of adversaries still present (expelled nodes are shunned,
    // churned ones departed) — comparable to the adaptive rows' integral.
    s.gain = ex.config().freerider_behavior.gain();
    std::size_t present = 0;
    for (const auto id : ex.freerider_ids()) {
      if (!ex.is_departed(id) && ex.directory().is_live(id)) ++present;
    }
    s.present_fraction = adversaries == 0
                             ? 0.0
                             : static_cast<double>(present) /
                                   static_cast<double>(adversaries);
  }
  return s;
}

/// Sections 1+2: the catalog frontier table and the whitewash A/B.
/// Returns the number of failed assertions.
int run_frontier_sections(std::uint32_t reps,
                          runtime::ParallelRunner& runner) {
  std::printf("=== adversary frontier: catalog strategies vs the full "
              "accountability stack ===\n");
  std::printf("n=120, 35 s, delta=0.5, eta=-2.0, M=4, 40%% honest burst, "
              "%u reps/cell [build=%s threads=%u]\n\n",
              reps, build_type(), runner.threads());

  // Fixed cell grid: the defended frontier (handoff on) for the static
  // baseline + every catalog entry, then the whitewash A/B's handoff-off
  // cells. Grid and rep counts are constants and per-rep seeds are shared
  // across cells (paired comparisons), so every printed digit is
  // --threads-invariant.
  std::vector<Cell> cells;
  cells.push_back({"static", {}, true});
  for (const auto& entry : adversary::catalog()) {
    cells.push_back({entry.name, entry.config, true});
  }
  adversary::AdversaryConfig whitewash;
  for (const auto& entry : adversary::catalog()) {
    if (entry.config.strategy == adversary::Strategy::kWhitewash) {
      whitewash = entry.config;
    }
  }
  cells.push_back({"static", {}, false});
  cells.push_back({"whitewash", whitewash, false});
  // The carried-store arm: same broken quorums as handoff-off, but blame
  // conserved across the bounce.
  cells.push_back({"whitewash", whitewash, false, true});

  const std::size_t tasks = cells.size() * reps;
  const auto samples = runner.map<Sample>(tasks, [&](std::size_t task) {
    const Cell& cell = cells[task / reps];
    const auto rep = static_cast<std::uint64_t>(task % reps);
    auto cfg = runtime::adversary_frontier_config(
        cell.handoff_on, runtime::derive_task_seed(0xF407ULL, rep));
    cfg.adversary = cell.adversary;
    cfg.carried_manager_store = cell.carried_store;
    runtime::Experiment ex(cfg);
    ex.run();
    return measure(ex);
  });

  std::vector<CellResult> results(cells.size());
  for (std::size_t task = 0; task < samples.size(); ++task) {
    results[task / reps].add(samples[task]);  // task order: deterministic
  }
  for (auto& r : results) r.finalize();

  TextTable table({"strategy", "handoff", "gain", "detection", "gain*(1-d)",
                   "false pos", "stayer blame", "present", "bounces",
                   "probes", "expulsions"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i];
    table.add_row({cells[i].name,
                   cells[i].carried_store
                       ? "off+carried"
                       : (cells[i].handoff_on ? "on" : "off"),
                   TextTable::num(r.mean.gain, 3),
                   TextTable::num(r.mean.detection, 3),
                   TextTable::num(r.adjusted_gain(), 3),
                   TextTable::num(r.mean.false_positive, 3),
                   TextTable::num(r.mean.stayer_blame, 2),
                   TextTable::num(r.mean.present_fraction, 2),
                   TextTable::num(r.mean.bounces, 1),
                   TextTable::num(r.mean.probes, 1),
                   TextTable::num(r.mean.expulsions, 1)});
  }
  table.print();

  // ---- the whitewasher A/B assertion (the reason expulsion handoff
  // exists): without handoff, flee-and-rejoin must out-earn static
  // freeriding on evasion-adjusted gain; with manager handoff + expulsion
  // handoff the edge must collapse.
  const auto& static_on = results[0];
  const CellResult* ww_on = nullptr;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].handoff_on &&
        cells[i].adversary.strategy == adversary::Strategy::kWhitewash) {
      ww_on = &results[i];
    }
  }
  const auto& static_off = results[cells.size() - 3];
  const auto& ww_off = results[cells.size() - 2];
  const auto& ww_carried = results[cells.size() - 1];

  const double edge_off = ww_off.adjusted_gain() - static_off.adjusted_gain();
  const double edge_on = ww_on->adjusted_gain() - static_on.adjusted_gain();
  const double edge_carried =
      ww_carried.adjusted_gain() - static_off.adjusted_gain();
  std::printf("\nwhitewash edge over static (gain*(1-detection)): "
              "handoff off %+0.3f | off+carried store %+0.3f | "
              "handoff+expulsion-handoff on %+0.3f\n",
              edge_off, edge_carried, edge_on);

  int failures = 0;
  if (edge_off <= 0.3) {
    std::fprintf(stderr, "bench_adversary_frontier: whitewasher failed to "
                 "beat the static freerider with handoff off "
                 "(edge %+0.3f, floor 0.30)\n", edge_off);
    ++failures;
  }
  if (edge_on > edge_off * 0.8) {
    std::fprintf(stderr, "bench_adversary_frontier: handoff + expulsion "
                 "handoff did not collapse the whitewash edge "
                 "(off %+0.3f, on %+0.3f, ceiling 0.8x)\n",
                 edge_off, edge_on);
    ++failures;
  }
  if (edge_carried >= edge_off) {
    std::fprintf(stderr, "bench_adversary_frontier: carrying the manager "
                 "store across the bounce did not reduce the whitewash "
                 "edge (off %+0.3f, off+carried %+0.3f)\n",
                 edge_off, edge_carried);
    ++failures;
  }
  if (failures == 0) {
    std::printf("whitewash A/B holds: evades without handoff, indicted "
                "with handoff + expulsion handoff.\n");
  }
  return failures;
}

// ---------------------------------------------------------------------------
// Section 3: the membership-compromise axis (DESIGN.md §12).

/// One membership-axis cell: colluder fraction × attack × sampler variant
/// over runtime::membership_frontier_config.
struct MemCell {
  const char* attack_name;  ///< "none" or membership_catalog entry name
  adversary::MembershipAttackConfig attack;
  membership::SamplerPolicy sampler;
  double fraction = 0.20;  ///< colluding-freerider population fraction
};

struct MemSample {
  double detection = 0.0;
  double false_positive = 0.0;
  double fr_score = 0.0;       ///< mean min-vote score over the coalition
  double stayer_blame = 0.0;   ///< wrongful blame per honest stayer
  double colluder_share = 0.0; ///< mean coalition share of honest views
  double victim_share = 0.0;   ///< same, over the eclipse victim subset
};

struct MemResult {
  MemSample mean;
  std::uint32_t reps = 0;
  void add(const MemSample& s) {
    ++reps;
    mean.detection += s.detection;
    mean.false_positive += s.false_positive;
    mean.fr_score += s.fr_score;
    mean.stayer_blame += s.stayer_blame;
    mean.colluder_share += s.colluder_share;
    mean.victim_share += s.victim_share;
  }
  void finalize() {
    if (reps == 0) return;
    const double r = static_cast<double>(reps);
    mean.detection /= r;
    mean.false_positive /= r;
    mean.fr_score /= r;
    mean.stayer_blame /= r;
    mean.colluder_share /= r;
    mean.victim_share /= r;
  }
};

MemSample measure_membership(runtime::Experiment& ex) {
  MemSample s;
  const double eta = ex.config().lifting.eta;
  std::size_t detected = 0;
  std::size_t adversaries = 0;
  std::vector<std::uint8_t> colluder(ex.population(), 0);
  for (const auto id : ex.freerider_ids()) {
    ++adversaries;
    colluder[id.value()] = 1;
    s.fr_score += ex.true_score(id);
    // Expulsions are off in this scenario, so detection reduces to the
    // end-of-run min-vote score read (same predicate as measure()).
    if (ex.majority_expelled(id) ||
        (!ex.is_departed(id) && ex.true_score(id) < eta)) {
      ++detected;
    }
  }
  s.detection = adversaries == 0 ? 0.0
                                 : static_cast<double>(detected) /
                                       static_cast<double>(adversaries);
  if (adversaries != 0) s.fr_score /= static_cast<double>(adversaries);
  s.false_positive = ex.detection_at(eta).false_positive;
  s.stayer_blame = ex.honest_blame_split().stayer_mean();

  // View compromise read directly off the RPS substrate. Computed against
  // the freerider set rather than RpsNetwork::is_colluder so the unarmed
  // baseline cells report the same statistic (their colluder mask is empty).
  const auto* rps = ex.rps();
  const auto share_of = [&](NodeId id) {
    const auto& view = rps->view_of(id);
    if (view.empty()) return -1.0;
    std::size_t hits = 0;
    for (const auto v : view) {
      if (v.value() < colluder.size()) hits += colluder[v.value()];
    }
    return static_cast<double>(hits) / static_cast<double>(view.size());
  };
  double sum = 0.0;
  std::size_t honest_views = 0;
  for (std::uint32_t i = 1; i < ex.population(); ++i) {
    const NodeId id{i};
    if (colluder[i] != 0 || !rps->alive(id)) continue;
    const double share = share_of(id);
    if (share < 0.0) continue;
    sum += share;
    ++honest_views;
  }
  s.colluder_share = honest_views == 0
                         ? 0.0
                         : sum / static_cast<double>(honest_views);
  const auto& victims = rps->eclipse_victims();
  if (!victims.empty()) {
    double vsum = 0.0;
    std::size_t n = 0;
    for (const auto v : victims) {
      if (!rps->alive(v)) continue;
      const double share = share_of(v);
      if (share < 0.0) continue;
      vsum += share;
      ++n;
    }
    s.victim_share = n == 0 ? 0.0 : vsum / static_cast<double>(n);
  }
  return s;
}

/// Section 3 driver. Same fixed-grid construction as the frontier table:
/// per-rep seeds shared across all cells (paired comparisons), task-ordered
/// reduce, so the printed table is bit-identical at any --threads. Returns
/// the number of failed assertions.
int run_membership_axis(std::uint32_t reps, runtime::ParallelRunner& runner) {
  std::printf("\n=== membership-compromise axis: view attack x sampler "
              "variant ===\n");
  std::printf("n=120, 30 s, colluding freeriders delta=0.5, eta=-3.0, M=4, "
              "expulsions off, %u reps/cell [build=%s threads=%u]\n\n",
              reps, build_type(), runner.threads());

  const membership::SamplerPolicy legacy{};
  const auto hardened = membership::SamplerPolicy::hardened_defaults();
  static constexpr double kFractions[] = {0.10, 0.25};
  const auto& catalog = adversary::membership_catalog();
  const std::size_t n_attacks = 1 + catalog.size();  // "none" + catalog

  std::vector<MemCell> cells;
  for (const double fraction : kFractions) {
    for (const auto& sampler : {legacy, hardened}) {
      cells.push_back({"none", {}, sampler, fraction});
      for (const auto& entry : catalog) {
        cells.push_back({entry.name, entry.config, sampler, fraction});
      }
    }
  }
  // Cell layout: fraction-major, then sampler (0 legacy / 1 hardened),
  // then attack (0 = none, 1.. = catalog order).
  const auto idx = [n_attacks](std::size_t fi, std::size_t si,
                               std::size_t ai) {
    return (fi * 2 + si) * n_attacks + ai;
  };

  const std::size_t tasks = cells.size() * reps;
  const auto samples = runner.map<MemSample>(tasks, [&](std::size_t task) {
    const MemCell& cell = cells[task / reps];
    const auto rep = static_cast<std::uint64_t>(task % reps);
    auto cfg = runtime::membership_frontier_config(
        runtime::derive_task_seed(0x4D454DF4ULL, rep));  // "MEM"+frontier
    cfg.freerider_fraction = cell.fraction;
    cfg.membership.sampler = cell.sampler;
    cfg.membership.attack = cell.attack;
    runtime::Experiment ex(cfg);
    ex.run();
    return measure_membership(ex);
  });

  std::vector<MemResult> results(cells.size());
  for (std::size_t task = 0; task < samples.size(); ++task) {
    results[task / reps].add(samples[task]);  // task order: deterministic
  }
  for (auto& r : results) r.finalize();

  TextTable table({"fraction", "attack", "sampler", "detection", "false pos",
                   "fr score", "stayer blame", "view share", "victim share"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& m = results[i].mean;
    table.add_row({TextTable::num(cells[i].fraction, 2),
                   cells[i].attack_name,
                   cells[i].sampler.hardened() ? "hardened" : "legacy",
                   TextTable::num(m.detection, 3),
                   TextTable::num(m.false_positive, 3),
                   TextTable::num(m.fr_score, 2),
                   TextTable::num(m.stayer_blame, 2),
                   TextTable::num(m.colluder_share, 3),
                   TextTable::num(m.victim_share, 3)});
  }
  table.print();

  int failures = 0;
  for (std::size_t fi = 0; fi < 2; ++fi) {
    const auto& legacy_none = results[idx(fi, 0, 0)].mean;
    const auto& hardened_none = results[idx(fi, 1, 0)].mean;
    for (std::size_t ai = 1; ai < n_attacks; ++ai) {
      const char* name = catalog[ai - 1].name;
      const auto& la = results[idx(fi, 0, ai)].mean;  // legacy + attack
      const auto& ha = results[idx(fi, 1, ai)].mean;  // hardened + attack
      // The attack's footprint: eclipse concentrates on its victim subset,
      // the broadcast attacks pack every honest view.
      const double la_footprint =
          la.victim_share > la.colluder_share ? la.victim_share
                                              : la.colluder_share;
      const double ha_footprint =
          ha.victim_share > ha.colluder_share ? ha.victim_share
                                              : ha.colluder_share;
      // Structural: under the legacy sampler the attack must actually
      // compromise views well past the honest-sampling baseline...
      if (la_footprint < legacy_none.colluder_share + 0.10) {
        std::fprintf(stderr, "bench_adversary_frontier: %s (fraction %.2f) "
                     "did not compromise legacy views (share %.3f vs "
                     "baseline %.3f + 0.10)\n",
                     name, kFractions[fi], la_footprint,
                     legacy_none.colluder_share);
        ++failures;
      }
      // ...and the hardened sampler's attested merge must strip most of
      // the packing (self-adverts are protocol-legal, so a small residual
      // over the hardened baseline is expected).
      const double la_excess = la_footprint - legacy_none.colluder_share;
      const double ha_excess = ha_footprint - hardened_none.colluder_share;
      if (ha_excess > la_excess * 0.5) {
        std::fprintf(stderr, "bench_adversary_frontier: hardened sampler "
                     "did not strip %s view packing (fraction %.2f: excess "
                     "legacy %.3f, hardened %.3f, ceiling 0.5x)\n",
                     name, kFractions[fi], la_excess, ha_excess);
        ++failures;
      }
    }
  }
  // The detection A/B at the heavy colluder fraction: the broadcast view
  // attacks must starve blame under the legacy sampler (partner slots land
  // on coalition members who never blame — Agent::emit_blame), and the
  // hardened sampler must close most of that detection gap. Eclipse is
  // asserted structurally above only: its victim subset is too small to
  // move the population-level detection mean reliably.
  const auto& heavy_none = results[idx(1, 0, 0)].mean;
  const auto& heavy_hard_none = results[idx(1, 1, 0)].mean;
  for (std::size_t ai = 1; ai <= 2; ++ai) {  // view-poison, hub-capture
    const char* name = catalog[ai - 1].name;
    const double legacy_drop =
        heavy_none.detection - results[idx(1, 0, ai)].mean.detection;
    const double hardened_drop =
        heavy_hard_none.detection - results[idx(1, 1, ai)].mean.detection;
    if (legacy_drop < 0.15) {
      std::fprintf(stderr, "bench_adversary_frontier: %s failed to degrade "
                   "detection under the legacy sampler (drop %.3f, floor "
                   "0.15)\n", name, legacy_drop);
      ++failures;
    }
    if (hardened_drop > legacy_drop * 0.5) {
      std::fprintf(stderr, "bench_adversary_frontier: hardened sampler did "
                   "not close the %s detection gap (legacy drop %.3f, "
                   "hardened drop %.3f, ceiling 0.5x)\n",
                   name, legacy_drop, hardened_drop);
      ++failures;
    }
    std::printf("%s detection drop at fraction 0.25: legacy %+0.3f | "
                "hardened %+0.3f\n", name, legacy_drop, hardened_drop);
  }
  if (failures == 0) {
    std::printf("membership A/B holds: view attacks starve detection under "
                "the legacy sampler; the hardened sampler restores it.\n");
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t reps =
      runtime::parse_flag(argc, argv, "--reps", 1, 1'000, 4);
  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));
  bool membership_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--membership-only") == 0) membership_only = true;
  }

  int failures = 0;
  if (!membership_only) failures += run_frontier_sections(reps, runner);
  failures += run_membership_axis(reps, runner);
  return failures == 0 ? 0 : 1;
}

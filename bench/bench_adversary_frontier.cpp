/// Adaptive-adversary frontier — the adaptive analogue of Fig. 12. The
/// paper's detection/gain trade-off assumes *static* freeriders (one Δ for
/// the whole run); this bench runs every catalog strategy from
/// src/adversary/strategy.hpp through one fixed accountability scenario
/// (score policing + expulsion + manager/expulsion handoff + divergent
/// views + churn with an early honest-departure burst that pre-thins the
/// manager quorums) and prints one frontier row per strategy:
///
///   gain        realized upload-bandwidth gain: BehaviorSpec::gain()
///               integrated over the adversaries' present time
///   detection   committed expulsion by a manager majority (an indictment
///               outlives a departure — it blocks the rejoin), or present
///               at the end with a min-vote score below η
///   stayer blame  mean ledger blame per honest stayer (wrongful blame)
///
/// Monte-Carlo repetitions are sharded over a FIXED task grid on the
/// ParallelRunner (never threads()), with per-rep seeds from
/// derive_task_seed shared across cells (paired comparisons) and
/// task-ordered reduces, so the printed table is bit-identical at any
/// --threads value.
///
/// The second section is the whitewasher A/B the churn-resilient
/// accountability machinery exists for (ROADMAP's timed-departure
/// adversary): with manager handoff OFF, the pre-thinned quorums stay
/// broken — score reads about the whitewasher fall below min_score_replies
/// and expel votes cannot reach a majority of the (fixed-size) manager
/// row, so flee-before-the-commit + rejoin-with-fresh-scores wins and the
/// whitewasher must measurably beat the static freerider on
/// evasion-adjusted gain = gain x (1 - detection). With manager handoff +
/// expulsion handoff ON, every hole is promoted over and ledger rows
/// migrate, the expulsion pipeline completes during the lay-low window,
/// and the indictment latch must collapse that edge (exit 1 otherwise).
///
/// Usage: bench_adversary_frontier [--threads N] [--reps N]

#include <cstdio>
#include <vector>

#include "adversary/strategy.hpp"
#include "common/build_info.hpp"
#include "common/table.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace lifting;

/// One cell of the fixed Monte-Carlo grid over the shared accountability
/// scenario (runtime::adversary_frontier_config — the same deployment
/// tests/test_adversary.cpp pins the A/B on).
struct Cell {
  const char* name;  ///< catalog name or "static"
  adversary::AdversaryConfig adversary;  ///< kNone = static baseline
  bool handoff_on = true;
  /// With handoff off: retiring incarnations push their manager rows into
  /// the rejoiner's fresh store (ScenarioConfig::carried_manager_store), so
  /// blame survives a bounce without any promotion machinery. Isolates the
  /// A/B: how much of the defended edge-collapse is blame conservation vs
  /// quorum repair.
  bool carried_store = false;
};

/// One repetition's measurements (means accumulate in task order).
struct Sample {
  double gain = 0.0;
  double detection = 0.0;
  double false_positive = 0.0;
  double stayer_blame = 0.0;
  double present_fraction = 0.0;
  double bounces = 0.0;
  double probes = 0.0;
  double expulsions = 0.0;
};

struct CellResult {
  Sample mean;
  std::uint32_t reps = 0;
  void add(const Sample& s) {
    ++reps;
    mean.gain += s.gain;
    mean.detection += s.detection;
    mean.false_positive += s.false_positive;
    mean.stayer_blame += s.stayer_blame;
    mean.present_fraction += s.present_fraction;
    mean.bounces += s.bounces;
    mean.probes += s.probes;
    mean.expulsions += s.expulsions;
  }
  void finalize() {
    if (reps == 0) return;
    const double r = static_cast<double>(reps);
    mean.gain /= r;
    mean.detection /= r;
    mean.false_positive /= r;
    mean.stayer_blame /= r;
    mean.present_fraction /= r;
    mean.bounces /= r;
    mean.probes /= r;
    mean.expulsions /= r;
  }
  [[nodiscard]] double adjusted_gain() const {
    return mean.gain * (1.0 - mean.detection);
  }
};

Sample measure(runtime::Experiment& ex) {
  Sample s;
  const double eta = ex.config().lifting.eta;
  std::size_t detected = 0;
  std::size_t adversaries = 0;
  for (const auto id : ex.freerider_ids()) {
    ++adversaries;
    // Caught = a manager majority committed the expulsion (the indictment
    // is latched — it blocks any rejoin, even when the victim slipped away
    // before the expulsion propagated), or present with a min-vote read
    // below η at the end.
    if (ex.majority_expelled(id) ||
        (!ex.is_departed(id) && ex.true_score(id) < eta)) {
      ++detected;
    }
  }
  s.detection = adversaries == 0 ? 0.0
                                 : static_cast<double>(detected) /
                                       static_cast<double>(adversaries);
  s.false_positive = ex.detection_at(eta).false_positive;
  s.stayer_blame = ex.honest_blame_split().stayer_mean();
  s.expulsions = static_cast<double>(ex.expulsions().size());
  if (ex.config().adversary.enabled()) {
    const auto adv = ex.adversary_stats();
    s.gain = adv.mean_realized_gain;
    s.present_fraction = adv.mean_present_fraction;
    s.bounces = static_cast<double>(adv.bounces);
    s.probes = static_cast<double>(adv.probes);
  } else {
    // Static baseline: full throttle while in the system. No controller
    // integrates presence over time, so approximate with the end-state
    // fraction of adversaries still present (expelled nodes are shunned,
    // churned ones departed) — comparable to the adaptive rows' integral.
    s.gain = ex.config().freerider_behavior.gain();
    std::size_t present = 0;
    for (const auto id : ex.freerider_ids()) {
      if (!ex.is_departed(id) && ex.directory().is_live(id)) ++present;
    }
    s.present_fraction = adversaries == 0
                             ? 0.0
                             : static_cast<double>(present) /
                                   static_cast<double>(adversaries);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t reps =
      runtime::parse_flag(argc, argv, "--reps", 1, 1'000, 4);
  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== adversary frontier: catalog strategies vs the full "
              "accountability stack ===\n");
  std::printf("n=120, 35 s, delta=0.5, eta=-2.0, M=4, 40%% honest burst, "
              "%u reps/cell [build=%s threads=%u]\n\n",
              reps, build_type(), runner.threads());

  // Fixed cell grid: the defended frontier (handoff on) for the static
  // baseline + every catalog entry, then the whitewash A/B's handoff-off
  // cells. Grid and rep counts are constants and per-rep seeds are shared
  // across cells (paired comparisons), so every printed digit is
  // --threads-invariant.
  std::vector<Cell> cells;
  cells.push_back({"static", {}, true});
  for (const auto& entry : adversary::catalog()) {
    cells.push_back({entry.name, entry.config, true});
  }
  adversary::AdversaryConfig whitewash;
  for (const auto& entry : adversary::catalog()) {
    if (entry.config.strategy == adversary::Strategy::kWhitewash) {
      whitewash = entry.config;
    }
  }
  cells.push_back({"static", {}, false});
  cells.push_back({"whitewash", whitewash, false});
  // The carried-store arm: same broken quorums as handoff-off, but blame
  // conserved across the bounce.
  cells.push_back({"whitewash", whitewash, false, true});

  const std::size_t tasks = cells.size() * reps;
  const auto samples = runner.map<Sample>(tasks, [&](std::size_t task) {
    const Cell& cell = cells[task / reps];
    const auto rep = static_cast<std::uint64_t>(task % reps);
    auto cfg = runtime::adversary_frontier_config(
        cell.handoff_on, runtime::derive_task_seed(0xF407ULL, rep));
    cfg.adversary = cell.adversary;
    cfg.carried_manager_store = cell.carried_store;
    runtime::Experiment ex(cfg);
    ex.run();
    return measure(ex);
  });

  std::vector<CellResult> results(cells.size());
  for (std::size_t task = 0; task < samples.size(); ++task) {
    results[task / reps].add(samples[task]);  // task order: deterministic
  }
  for (auto& r : results) r.finalize();

  TextTable table({"strategy", "handoff", "gain", "detection", "gain*(1-d)",
                   "false pos", "stayer blame", "present", "bounces",
                   "probes", "expulsions"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i];
    table.add_row({cells[i].name,
                   cells[i].carried_store
                       ? "off+carried"
                       : (cells[i].handoff_on ? "on" : "off"),
                   TextTable::num(r.mean.gain, 3),
                   TextTable::num(r.mean.detection, 3),
                   TextTable::num(r.adjusted_gain(), 3),
                   TextTable::num(r.mean.false_positive, 3),
                   TextTable::num(r.mean.stayer_blame, 2),
                   TextTable::num(r.mean.present_fraction, 2),
                   TextTable::num(r.mean.bounces, 1),
                   TextTable::num(r.mean.probes, 1),
                   TextTable::num(r.mean.expulsions, 1)});
  }
  table.print();

  // ---- the whitewasher A/B assertion (the reason expulsion handoff
  // exists): without handoff, flee-and-rejoin must out-earn static
  // freeriding on evasion-adjusted gain; with manager handoff + expulsion
  // handoff the edge must collapse.
  const auto& static_on = results[0];
  const CellResult* ww_on = nullptr;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].handoff_on &&
        cells[i].adversary.strategy == adversary::Strategy::kWhitewash) {
      ww_on = &results[i];
    }
  }
  const auto& static_off = results[cells.size() - 3];
  const auto& ww_off = results[cells.size() - 2];
  const auto& ww_carried = results[cells.size() - 1];

  const double edge_off = ww_off.adjusted_gain() - static_off.adjusted_gain();
  const double edge_on = ww_on->adjusted_gain() - static_on.adjusted_gain();
  const double edge_carried =
      ww_carried.adjusted_gain() - static_off.adjusted_gain();
  std::printf("\nwhitewash edge over static (gain*(1-detection)): "
              "handoff off %+0.3f | off+carried store %+0.3f | "
              "handoff+expulsion-handoff on %+0.3f\n",
              edge_off, edge_carried, edge_on);

  int failures = 0;
  if (edge_off <= 0.3) {
    std::fprintf(stderr, "bench_adversary_frontier: whitewasher failed to "
                 "beat the static freerider with handoff off "
                 "(edge %+0.3f, floor 0.30)\n", edge_off);
    ++failures;
  }
  if (edge_on > edge_off * 0.8) {
    std::fprintf(stderr, "bench_adversary_frontier: handoff + expulsion "
                 "handoff did not collapse the whitewash edge "
                 "(off %+0.3f, on %+0.3f, ceiling 0.8x)\n",
                 edge_off, edge_on);
    ++failures;
  }
  if (edge_carried >= edge_off) {
    std::fprintf(stderr, "bench_adversary_frontier: carrying the manager "
                 "store across the bounce did not reduce the whitewash "
                 "edge (off %+0.3f, off+carried %+0.3f)\n",
                 edge_off, edge_carried);
    ++failures;
  }
  if (failures == 0) {
    std::printf("whitewash A/B holds: evades without handoff, indicted "
                "with handoff + expulsion handoff.\n");
  }
  return failures == 0 ? 0 : 1;
}

/// Equation 7 / §6.3.2 — the maximum partner-selection bias p*_m a
/// colluding freerider can sustain without failing the entropy audit,
/// as a function of γ and the coalition size m'.
///
/// Paper: γ = 8.95, m' = 25, n_h·f = 600 ⇒ p*_m ≈ 0.21 ("a freerider
/// colluding with 25 other nodes can serve its colluding partners 21% of
/// the time without being detected").
///
/// The analytic inversion is cross-checked by simulation: biased histories
/// at p_m slightly below/above p*_m pass/fail the γ check. The per-p_m
/// simulations run on the ParallelRunner, one task per bias point with an
/// RNG stream derived from the point's index — the table is identical at
/// any --threads value.

#include <cstdio>
#include <vector>

#include "analysis/entropy_model.hpp"
#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "membership/directory.hpp"
#include "membership/sampler.hpp"
#include "runtime/runner.hpp"
#include "stats/entropy.hpp"
#include "stats/summary.hpp"

namespace {

/// Mean entropy of simulated biased histories at bias p_m.
double simulated_entropy(double p_m, std::uint32_t coalition_size,
                         std::uint32_t nh, std::uint32_t fanout,
                         std::uint32_t n, lifting::Pcg32& rng) {
  using namespace lifting;
  membership::Directory directory(n);
  std::vector<NodeId> coalition;
  for (std::uint32_t i = 1; i <= coalition_size; ++i) {
    coalition.push_back(NodeId{i});
  }
  stats::Summary entropy;
  for (int node = 0; node < 40; ++node) {
    std::vector<NodeId> history;
    for (std::uint32_t round = 0; round < nh; ++round) {
      const auto picks = membership::sample_biased(
          rng, directory, NodeId{1}, fanout, coalition, p_m);
      history.insert(history.end(), picks.begin(), picks.end());
    }
    entropy.add(
        stats::multiset_entropy<NodeId>({history.data(), history.size()}));
  }
  return entropy.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lifting;
  using namespace lifting::analysis;

  const std::uint32_t nh = 50;
  const std::uint32_t fanout = 12;
  const std::uint32_t history = nh * fanout;  // 600
  const std::uint32_t n = 10'000;

  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== Eq. 7: maximum undetected bias p*_m (n_h*f = %u) "
              "[build=%s threads=%u] ===\n\n",
              history, build_type(), runner.threads());

  // --- the headline number
  const double p_star = max_undetected_bias(8.95, 25, history);
  std::printf("gamma=8.95, m'=25: p*_m = %.3f   (paper: ~0.21)\n\n", p_star);

  // --- sweep m' and gamma
  TextTable table({"gamma", "m'=5", "m'=10", "m'=25", "m'=50", "m'=100"});
  for (const double gamma : {8.50, 8.75, 8.95, 9.10}) {
    std::vector<std::string> row{TextTable::num(gamma, 2)};
    for (const std::uint32_t m : {5u, 10u, 25u, 50u, 100u}) {
      row.push_back(TextTable::num(max_undetected_bias(gamma, m, history), 3));
    }
    table.add_row(row);
  }
  table.print();

  // --- simulation cross-check around p*_m (one parallel task per point)
  std::printf("\nsimulated history entropy around p*_m (m'=25, "
              "gamma=8.95):\n");
  const std::vector<double> points{0.05,   p_star - 0.05, p_star,
                                   p_star + 0.05, 0.5,    0.9};
  const auto entropies = runner.map<double>(points.size(), [&](std::size_t i) {
    Pcg32 rng = derive_rng(20070, i);
    return simulated_entropy(points[i], 25, nh, fanout, n, rng);
  });
  TextTable sim({"p_m", "mean entropy", "passes gamma?"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    sim.add_row({TextTable::num(points[i], 3), TextTable::num(entropies[i], 3),
                 entropies[i] >= 8.95 ? "yes" : "no"});
  }
  sim.print();
  std::printf("\nexpected: pass below p*_m, fail above (the analytic "
              "entropy is asymptotic;\nfinite histories sit slightly "
              "below it, so the crossover lands near but under p*_m).\n");
  return 0;
}

#ifndef LIFTING_BENCH_ALLOC_TALLY_HPP
#define LIFTING_BENCH_ALLOC_TALLY_HPP

/// Heap accounting for bench binaries: a counting `operator new`/`delete`
/// pair plus a peak-RSS probe.
///
/// Including this header REPLACES the global allocation functions of the
/// final binary (the library is statically linked in, so every library
/// allocation is counted too). Include it from exactly one translation
/// unit per executable — each bench is a single .cpp, which is why a
/// header works where a shared object could not.
///
/// Tracked, all with relaxed atomics (the parallel-runner bench allocates
/// from worker threads):
///   - calls / bytes: cumulative allocation count and requested bytes —
///     the fresh-vs-reset delta currency of bench_sweep_scaling.
///   - live / high_water: currently-live heap bytes and their peak. Sized
///     on both sides with malloc_usable_size(), so frees balance
///     allocations exactly regardless of which delete overload fires.
///     reset_live_high_water() rebases the peak to the current live load,
///     scoping "high water" to one measured region (one bench row).
///
/// Debug/sanitizer builds inflate the absolute numbers; benches assert on
/// deltas and documented Release budgets only.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <new>
#include <sys/resource.h>

namespace lifting::bench {

inline std::atomic<std::uint64_t> g_alloc_calls{0};
inline std::atomic<std::uint64_t> g_alloc_bytes{0};
inline std::atomic<std::uint64_t> g_live_bytes{0};
inline std::atomic<std::uint64_t> g_live_high_water{0};

struct AllocSnapshot {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
  std::uint64_t live = 0;
  std::uint64_t high_water = 0;

  static AllocSnapshot now() {
    return {g_alloc_calls.load(std::memory_order_relaxed),
            g_alloc_bytes.load(std::memory_order_relaxed),
            g_live_bytes.load(std::memory_order_relaxed),
            g_live_high_water.load(std::memory_order_relaxed)};
  }
  [[nodiscard]] AllocSnapshot delta_since(const AllocSnapshot& start) const {
    return {calls - start.calls, bytes - start.bytes, live, high_water};
  }
  /// Peak heap growth of the region that started at `start` (after a
  /// reset_live_high_water()): bytes the region added on top of what was
  /// already live when it began.
  [[nodiscard]] std::uint64_t high_water_since(
      const AllocSnapshot& start) const {
    return high_water > start.live ? high_water - start.live : 0;
  }
};

/// Rebases the live-bytes peak to the current live load; call at the start
/// of each measured region.
inline void reset_live_high_water() {
  g_live_high_water.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

/// Peak resident set size of this process in kB, from /proc/self/status
/// (VmHWM), with a getrusage fallback. Process-global and monotone — only
/// the largest row of a bench moves it.
inline std::uint64_t peak_rss_kb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        kb = std::strtoull(line + 6, nullptr, 10);
        break;
      }
    }
    std::fclose(f);
    if (kb != 0) return kb;
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

inline void tally_alloc(void* p, std::size_t requested) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(requested, std::memory_order_relaxed);
  const std::uint64_t usable = malloc_usable_size(p);
  const std::uint64_t live =
      g_live_bytes.fetch_add(usable, std::memory_order_relaxed) + usable;
  // Racy-max under threads: good enough for a bench high-water mark.
  std::uint64_t peak = g_live_high_water.load(std::memory_order_relaxed);
  while (live > peak && !g_live_high_water.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void tally_free(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

}  // namespace lifting::bench

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    lifting::bench::tally_alloc(p, size);
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  lifting::bench::tally_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

#endif  // LIFTING_BENCH_ALLOC_TALLY_HPP

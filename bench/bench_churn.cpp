/// Churn-capable deployment bench: the stream-health scenario under
/// Poisson join/leave churn (5%/min arrivals + 5%/min departures, half of
/// them crashes), with the full LiFTinG verification stack and 10%
/// deterred freeriders.
///
/// Reports the same throughput columns as bench_scale_nodes (events/s,
/// wall-seconds per simulated second, health at 5 s lag) plus the churn
/// ledger: joins/departures executed, and the honest wrongful-blame split
/// between stayers and leavers — a crashed partner looks like a δ1
/// freerider to its verifiers until the failure detector fires, and that
/// blame must be accounted separately (per-node means; leavers accrue a
/// post-departure pulse on top of their pro-rated loss noise). The run
/// ends with a wind-down drain and prints the delivery-pool leak count,
/// which must be 0.
///
/// A second table runs the churn-resilient accountability scenario
/// (DESIGN.md §7): the same churn plus manager handoff, a 500 ms divergent
/// membership-view lag, and 50% of departures rejoining. Per population it
/// reports the handoff count (assignment promotions), the manager-quorum
/// trajectory (mean at end, minimum over per-second samples — without
/// handoff this decays with departures; with it the minimum stays pinned
/// at M until the base pool thins), and the honest wrongful-blame split
/// by churn role: stayer / leaver / rejoiner. Pool-leak must still be 0.
///
/// Usage: bench_churn [nodes...]
///   default populations: 1000 5000

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/build_info.hpp"
#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

using namespace lifting;

/// The one churn model both tables run ("same churn" in the output is a
/// code-level guarantee): 5%/min joins + 5%/min leaves/crashes, half
/// crashes, 10% freeriding joiners. The resilience table adds only the
/// rejoin knobs on top.
runtime::ScenarioTimeline::PoissonChurn churn_model(
    const runtime::ScenarioConfig& cfg, double sim_seconds,
    double rejoin_fraction) {
  runtime::ScenarioTimeline::PoissonChurn churn;
  churn.arrival_fraction_per_min = 0.05;    // 5%/min joins
  churn.departure_fraction_per_min = 0.05;  // 5%/min leaves+crashes
  churn.crash_fraction = 0.5;
  churn.freerider_fraction = 0.10;
  churn.freerider_behavior = cfg.freerider_behavior;
  churn.rejoin_fraction = rejoin_fraction;
  churn.rejoin_delay_mean = seconds(5.0);
  churn.start = seconds(2.0);
  churn.end = seconds(sim_seconds * 0.9);
  return churn;
}

/// Deployment knobs shared by both tables, without a timeline.
runtime::ScenarioConfig base_config(std::uint32_t n, double sim_seconds) {
  auto cfg = runtime::ScenarioConfig::planetlab();
  cfg.nodes = n;
  cfg.duration = seconds(sim_seconds);
  cfg.stream.duration = seconds(sim_seconds * 0.9);
  cfg.weak_fraction = 0.2;
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.035);
  cfg.failure_detection = seconds(2.0);
  return cfg;
}

runtime::ScenarioConfig churn_config(std::uint32_t n, double sim_seconds) {
  auto cfg = base_config(n, sim_seconds);
  cfg.timeline = runtime::ScenarioTimeline::poisson_churn(
      churn_model(cfg, sim_seconds, /*rejoin_fraction=*/0.0), n, cfg.seed);
  return cfg;
}

double horizon_seconds(std::uint32_t n) {
  if (n <= 1000) return 60.0;
  if (n <= 5000) return 20.0;
  return 10.0;
}

struct Row {
  std::uint32_t nodes = 0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  std::size_t joins = 0;
  std::size_t departures = 0;
  double health = 0.0;
  double stayer_blame = 0.0;  // mean ledger blame per honest stayer
  double leaver_blame = 0.0;  // mean ledger blame per honest leaver
  std::size_t pool_leak = 0;
  // Delivery-health counters (churn drops to departed nodes; the fault
  // and audit columns stay 0 here — no fault plan, modeled-TCP audits —
  // but are surfaced so a future faulty variant of this bench can't
  // silently hide them).
  std::uint64_t dropped = 0;          // network datagrams_dropped
  std::uint64_t faults_duplicated = 0;
  std::uint64_t audit_retries = 0;
};

/// The churn-resilient accountability scenario: churn_config's exact churn
/// model plus manager handoff, divergent views, and rejoining leavers
/// (half of the departed come back after ~5 s offline).
runtime::ScenarioConfig resilience_config(std::uint32_t n,
                                          double sim_seconds) {
  auto cfg = base_config(n, sim_seconds);
  cfg.view_propagation = milliseconds(500);
  cfg.manager_handoff_delay = milliseconds(500);
  cfg.timeline = runtime::ScenarioTimeline::poisson_churn(
      churn_model(cfg, sim_seconds, /*rejoin_fraction=*/0.5), n, cfg.seed);
  return cfg;
}

struct ResilienceRow {
  std::uint32_t nodes = 0;
  std::uint64_t handoffs = 0;
  std::size_t rejoins = 0;
  double quorum_mean_end = 0.0;
  std::size_t quorum_min = 0;  // minimum over per-second samples
  double stayer_blame = 0.0;
  double leaver_blame = 0.0;
  double rejoiner_blame = 0.0;
  std::size_t pool_leak = 0;
};

ResilienceRow run_resilience(std::uint32_t n) {
  ResilienceRow row;
  row.nodes = n;
  const double sim_seconds = horizon_seconds(n);
  runtime::Experiment ex(resilience_config(n, sim_seconds));
  // Drive in 1 s slices to sample the quorum trajectory (quorum_stats is
  // outcome-neutral by the assignment's replay contract).
  row.quorum_min = ex.config().lifting.managers;
  for (double t = 1.0; t <= sim_seconds; t += 1.0) {
    ex.run_until(kSimEpoch + seconds(t));
    const auto quorum = ex.quorum_stats();
    row.quorum_min = std::min(row.quorum_min, quorum.min);
    row.quorum_mean_end = quorum.mean;
  }
  ex.run();
  row.handoffs = ex.handoff_promotions();
  row.rejoins = ex.rejoins().size();
  const auto split = ex.honest_blame_split();
  row.stayer_blame = split.stayer_mean();
  row.leaver_blame = split.leaver_mean();
  row.rejoiner_blame = split.rejoiner_mean();
  ex.wind_down();
  row.pool_leak = ex.network().in_flight();
  return row;
}

Row run(std::uint32_t n) {
  Row row;
  row.nodes = n;
  row.sim_seconds = horizon_seconds(n);
  runtime::Experiment ex(churn_config(n, row.sim_seconds));
  const auto t0 = std::chrono::steady_clock::now();
  ex.run();
  const auto t1 = std::chrono::steady_clock::now();
  row.events = ex.simulator().events_processed();
  row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  row.joins = ex.joins().size();
  row.departures = ex.departures().size();

  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  playback.warmup = seconds(2.0);
  const auto curve = ex.health_curve({5.0}, /*honest_only=*/true, playback);
  row.health = curve.empty() ? 0.0 : curve.front().fraction_clear;

  const auto split = ex.honest_blame_split();
  row.stayer_blame = split.stayer_mean();
  row.leaver_blame = split.leaver_mean();
  row.dropped = ex.network_stats().datagrams_dropped;
  row.faults_duplicated = ex.fault_stats().duplicated;
  row.audit_retries = ex.audit_channel_totals().retries;

  // Leak check: drain every in-flight delivery and one-shot timer; the
  // pooled slots must all come home.
  ex.wind_down();
  row.pool_leak = ex.network().in_flight();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> populations;
  for (int i = 1; i < argc; ++i) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || v < 3 || v > 10'000'000) {
      std::fprintf(stderr,
                   "bench_churn: '%s' is not a valid population "
                   "(expected an integer >= 3)\n",
                   argv[i]);
      return 2;
    }
    populations.push_back(static_cast<std::uint32_t>(v));
  }
  if (populations.empty()) populations = {1000, 5000};

  std::printf("=== churn deployment: stream health under 5%%/min join+leave ===\n");
  // Self-describing header: saved bench logs must say what was measured.
  std::printf("build=%s sanitizer=%s threads=1 (serial rows) "
              "hardware_threads=%u\n",
              lifting::build_type(), lifting::sanitizer_tag(),
              std::thread::hardware_concurrency());
  std::printf(
      "674 kbps stream, f=7, Tg=500 ms, LiFTinG on, 10%% deterred "
      "freeriders,\n5%%/min Poisson arrivals + departures (half crashes, "
      "2 s failure detector)\n\n");

  lifting::TextTable table({"nodes", "sim s", "events", "wall s", "events/s",
                            "joins", "departs", "dropped", "health@5s",
                            "blame/stayer", "blame/leaver", "pool leak"});
  int leaks = 0;
  for (const auto n : populations) {
    const Row row = run(n);
    std::fprintf(stderr,
                 "[churn] n=%u: %llu events in %.2fs (%.0f ev/s), "
                 "+%zu/-%zu nodes, dropped=%llu dup=%llu retries=%llu, "
                 "leak=%zu\n",
                 row.nodes, (unsigned long long)row.events, row.wall_seconds,
                 static_cast<double>(row.events) / row.wall_seconds,
                 row.joins, row.departures,
                 (unsigned long long)row.dropped,
                 (unsigned long long)row.faults_duplicated,
                 (unsigned long long)row.audit_retries, row.pool_leak);
    if (row.pool_leak != 0) ++leaks;
    table.add_row({lifting::TextTable::num(row.nodes, 0),
                   lifting::TextTable::num(row.sim_seconds, 0),
                   lifting::TextTable::num(static_cast<double>(row.events), 0),
                   lifting::TextTable::num(row.wall_seconds, 2),
                   lifting::TextTable::num(static_cast<double>(row.events) /
                                               row.wall_seconds,
                                           0),
                   lifting::TextTable::num(static_cast<double>(row.joins), 0),
                   lifting::TextTable::num(static_cast<double>(row.departures),
                                           0),
                   lifting::TextTable::num(static_cast<double>(row.dropped), 0),
                   lifting::TextTable::num(row.health, 3),
                   lifting::TextTable::num(row.stayer_blame, 2),
                   lifting::TextTable::num(row.leaver_blame, 2),
                   lifting::TextTable::num(static_cast<double>(row.pool_leak),
                                           0)});
    std::fflush(stdout);
  }
  table.print();

  std::printf(
      "\n=== churn-resilient accountability: manager handoff + 500 ms "
      "divergent views + rejoin ===\n"
      "same churn, 50%% of departures rejoin after ~5 s offline; quorum "
      "min sampled per second\n\n");
  lifting::TextTable resilience({"nodes", "handoffs", "rejoins",
                                 "quorum min", "quorum mean", "blame/stayer",
                                 "blame/leaver", "blame/rejoiner",
                                 "pool leak"});
  for (const auto n : populations) {
    const ResilienceRow row = run_resilience(n);
    std::fprintf(stderr,
                 "[resilience] n=%u: %llu handoffs, %zu rejoins, quorum "
                 "min=%zu, leak=%zu\n",
                 row.nodes, (unsigned long long)row.handoffs, row.rejoins,
                 row.quorum_min, row.pool_leak);
    if (row.pool_leak != 0) ++leaks;
    resilience.add_row(
        {lifting::TextTable::num(row.nodes, 0),
         lifting::TextTable::num(static_cast<double>(row.handoffs), 0),
         lifting::TextTable::num(static_cast<double>(row.rejoins), 0),
         lifting::TextTable::num(static_cast<double>(row.quorum_min), 0),
         lifting::TextTable::num(row.quorum_mean_end, 2),
         lifting::TextTable::num(row.stayer_blame, 2),
         lifting::TextTable::num(row.leaver_blame, 2),
         lifting::TextTable::num(row.rejoiner_blame, 2),
         lifting::TextTable::num(static_cast<double>(row.pool_leak), 0)});
    std::fflush(stdout);
  }
  resilience.print();
  return leaks == 0 ? 0 : 1;
}

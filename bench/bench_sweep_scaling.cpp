/// Sweep-throughput scaling bench: the randomized 20-config scenario-sweep
/// workload (src/runtime/sweep.hpp — the same cases test_scenario_sweep
/// checks invariants on) executed by the ParallelRunner at 1, 2, 4 and
/// hardware threads.
///
/// Reports scenarios/s per thread count and — the part that matters more
/// than the speedup — asserts that every parallel run's per-task digests
/// and the task-ordered aggregate are BIT-IDENTICAL to the serial
/// reference (exit 1 otherwise). On hardware with >= 4 cores the bench
/// also asserts >= 3x scenarios/s at 4 threads vs 1 thread; on smaller
/// machines it prints the measurement and skips the ratio assertion
/// (there is nothing to scale onto).
///
/// The second section measures what Experiment::reset buys: heap
/// allocation (calls, bytes and live-bytes high water, via the counting
/// operator new in bench/alloc_tally.hpp) per repetition of one sweep
/// scenario, rebuilding from scratch vs rewinding the built deployment.
/// The reset path must allocate strictly less (exit 1 otherwise).
///
/// The third section is the steady-state claim behind the memory diet:
/// once a reused planetlab deployment is past warmup, running further
/// periods performs ZERO heap allocations — every per-period structure
/// (proposal rings, scratch buffers, event arena, delivery pool) recycles
/// storage it already owns. Asserted exactly (exit 1 on any allocation).
///
/// Usage: bench_sweep_scaling [--threads N] [--cases N] [--reps N]
///   --threads caps the largest thread count exercised (default: all of
///   1/2/4/hardware_concurrency that fit); --cases sizes the workload
///   (default 20); --reps sizes the allocation comparison (default 4).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "alloc_tally.hpp"
#include "common/build_info.hpp"
#include "common/table.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace lifting;
using bench::AllocSnapshot;
using runtime::ParallelRunner;
using runtime::RunDigest;
using runtime::RunSpec;

bool digests_match(const std::vector<RunDigest>& a,
                   const std::vector<RunDigest>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t cases =
      runtime::parse_flag(argc, argv, "--cases", 1, 1'000'000, 20);
  const std::uint32_t reps =
      runtime::parse_flag(argc, argv, "--reps", 1, 1'000'000, 4);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned max_threads = ParallelRunner::threads_from_args(argc, argv);

  std::printf("=== sweep scaling: %u-config scenario sweep on the parallel "
              "runner ===\n",
              cases);
  std::printf("build=%s sanitizer=%s hardware_threads=%u max_threads=%u\n\n",
              build_type(), sanitizer_tag(), hw, max_threads);

  const auto specs = runtime::scenario_sweep_specs(cases);

  // ---- serial reference
  ParallelRunner serial(1);
  auto t0 = std::chrono::steady_clock::now();
  const auto reference = serial.run_digests(specs);
  auto t1 = std::chrono::steady_clock::now();
  const double serial_wall = std::chrono::duration<double>(t1 - t0).count();
  const double serial_rate = static_cast<double>(cases) / serial_wall;

  RunDigest serial_total;
  for (const auto& d : reference) serial_total.accumulate(d);

  TextTable table({"threads", "wall s", "scenarios/s", "speedup",
                   "aggregate identical"});
  table.add_row({"1", TextTable::num(serial_wall, 2),
                 TextTable::num(serial_rate, 2), "1.00", "reference"});

  // ---- parallel runs: every digest must equal the serial reference.
  std::vector<unsigned> counts;
  for (const unsigned t : {2u, 4u, hw}) {
    if (t <= 1 || t > max_threads) continue;
    bool seen = false;
    for (const unsigned c : counts) seen = seen || c == t;
    if (!seen) counts.push_back(t);
  }
  int failures = 0;
  double rate_at_4 = 0.0;
  for (const unsigned threads : counts) {
    ParallelRunner runner(threads);
    t0 = std::chrono::steady_clock::now();
    const auto digests = runner.run_digests(specs);
    t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    const double rate = static_cast<double>(cases) / wall;
    if (threads == 4) rate_at_4 = rate;
    const bool identical = digests_match(reference, digests);
    if (!identical) ++failures;
    char label[16];
    std::snprintf(label, sizeof(label), "%u", threads);
    table.add_row({label, TextTable::num(wall, 2), TextTable::num(rate, 2),
                   TextTable::num(rate / serial_rate, 2),
                   identical ? "yes" : "NO — BUG"});
    std::fprintf(stderr, "[sweep-scaling] threads=%u: %.2fs (%.2f scen/s, "
                 "%.2fx), identical=%s\n",
                 threads, wall, rate, rate / serial_rate,
                 identical ? "yes" : "NO");
  }
  table.print();
  std::printf("\nserial aggregate: %llu events, %llu datagrams (%llu "
              "dropped), %llu blame emissions over %u runs\n",
              (unsigned long long)serial_total.events,
              (unsigned long long)serial_total.datagrams_sent,
              (unsigned long long)serial_total.datagrams_dropped,
              (unsigned long long)serial_total.blame_emissions, cases);
  std::printf("fault/audit columns (part of every digest compared above): "
              "faults dropped %llu, duplicated %llu, delayed %llu; audit "
              "retries %llu, give-ups %llu, dups suppressed %llu\n",
              (unsigned long long)serial_total.faults_dropped,
              (unsigned long long)serial_total.faults_duplicated,
              (unsigned long long)serial_total.faults_delayed,
              (unsigned long long)serial_total.audit_retries,
              (unsigned long long)serial_total.audit_give_ups,
              (unsigned long long)serial_total.audit_dups_suppressed);

  if (hw >= 4 && rate_at_4 > 0.0) {
    const double speedup = rate_at_4 / serial_rate;
    std::printf("\n4-thread speedup: %.2fx (floor: 3.00x)\n", speedup);
    if (speedup < 3.0) {
      std::fprintf(stderr, "bench_sweep_scaling: 4-thread speedup %.2fx "
                   "below the 3x floor\n", speedup);
      ++failures;
    }
  } else if (hw < 4) {
    std::printf("\n4-thread speedup floor skipped: hardware has %u "
                "thread(s); identity checks above still apply.\n", hw);
  } else {
    std::printf("\n4-thread speedup floor skipped: --threads capped the "
                "sweep at %u; identity checks above still apply.\n",
                max_threads);
  }

  // ---- Experiment::reset vs rebuild-from-scratch allocation accounting.
  // Two repetition regimes: a full-horizon sweep case (run-time protocol
  // bookkeeping dilutes the rebuild cost) and the short-horizon regime the
  // reset path was built for — Monte-Carlo repetitions where the world is
  // torn down and rebuilt after only a few simulated seconds, so the
  // rebuild-allocation storm dominates. reset must allocate strictly less
  // in both.
  std::printf("\n--- repetition cost: fresh construction vs "
              "Experiment::reset (%u reps each) ---\n", reps);

  auto sweep_cfg = specs[specs.size() > 1 ? 1 : 0].config;  // churny case
  auto short_cfg = runtime::ScenarioConfig::planetlab();
  short_cfg.duration = seconds(3.0);
  short_cfg.stream.duration = seconds(2.5);

  struct Regime {
    const char* name;
    runtime::ScenarioConfig config;
  };
  const Regime regimes[] = {
      {"sweep case, full horizon", sweep_cfg},
      {"planetlab 300, 3 s horizon", short_cfg},
  };

  TextTable alloc({"repetition regime", "path", "allocs/rep", "bytes/rep",
                   "high-water B", "vs fresh"});
  for (const auto& regime : regimes) {
    auto fresh_digest = RunDigest{};
    bench::reset_live_high_water();
    const auto fresh_start = AllocSnapshot::now();
    for (std::uint32_t r = 0; r < reps; ++r) {
      runtime::Experiment ex(regime.config);
      ex.run();
      fresh_digest = RunDigest::of(ex);
    }
    const auto fresh_end = AllocSnapshot::now();
    const auto fresh_cost = fresh_end.delta_since(fresh_start);
    const auto fresh_hw = fresh_end.high_water_since(fresh_start);

    runtime::Experiment reused(regime.config);  // built outside the tally
    reused.run();
    auto reset_digest = RunDigest::of(reused);
    bench::reset_live_high_water();
    const auto reset_start = AllocSnapshot::now();
    for (std::uint32_t r = 0; r < reps; ++r) {
      reused.reset();
      reused.run();
      reset_digest = RunDigest::of(reused);
    }
    const auto reset_end = AllocSnapshot::now();
    const auto reset_cost = reset_end.delta_since(reset_start);
    const auto reset_hw = reset_end.high_water_since(reset_start);

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f%% of bytes",
                  fresh_cost.bytes == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(reset_cost.bytes) /
                            static_cast<double>(fresh_cost.bytes));
    alloc.add_row({regime.name, "fresh build",
                   TextTable::num(static_cast<double>(fresh_cost.calls) / reps, 0),
                   TextTable::num(static_cast<double>(fresh_cost.bytes) / reps, 0),
                   TextTable::num(static_cast<double>(fresh_hw), 0),
                   "100%"});
    alloc.add_row({"", "reset reuse",
                   TextTable::num(static_cast<double>(reset_cost.calls) / reps, 0),
                   TextTable::num(static_cast<double>(reset_cost.bytes) / reps, 0),
                   TextTable::num(static_cast<double>(reset_hw), 0),
                   ratio});
    // The absolute saving per repetition, for trend-tracking flat-map work
    // (DirectVerifier::pending_ in PR 4, CrossChecker::batches_/rounds_
    // in this PR): the delta is what those changes shrink.
    alloc.add_row(
        {"", "delta (fresh - reset)",
         TextTable::num((static_cast<double>(fresh_cost.calls) -
                         static_cast<double>(reset_cost.calls)) /
                            reps, 0),
         TextTable::num((static_cast<double>(fresh_cost.bytes) -
                         static_cast<double>(reset_cost.bytes)) /
                            reps, 0),
         TextTable::num(static_cast<double>(fresh_hw) -
                            static_cast<double>(reset_hw), 0),
         "saved/rep"});
    if (!(reset_digest == fresh_digest)) {
      std::fprintf(stderr, "bench_sweep_scaling: reset repetition digest "
                   "diverged from fresh construction (%s)\n", regime.name);
      ++failures;
    }
    if (reset_cost.bytes >= fresh_cost.bytes ||
        reset_cost.calls >= fresh_cost.calls) {
      std::fprintf(stderr, "bench_sweep_scaling: Experiment::reset did not "
                   "allocate less than rebuilding from scratch (%s)\n",
                   regime.name);
      ++failures;
    }
  }
  alloc.print();

  // ---- steady-state allocation: a warmed planetlab deployment in the
  // memory-diet configuration (streamed health folding delivery logs,
  // shortened history retention) must run further protocol periods without
  // a single heap allocation — rings, scratch buffers, spill-block cache,
  // the event arena and the delivery pool all recycle storage they already
  // own, and every remaining container is either window-bounded or
  // pre-sized for the stream. The first pass runs the full horizon so
  // every structure reaches the high-water mark this exact event sequence
  // demands; reset() then tears the per-node objects down — returning all
  // their recycled blocks to the thread's spill cache — and replays the
  // identical run. Replay demand at any instant is a prefix of what the
  // first pass released, so the warmed window is allocation-free by
  // construction, not by statistical luck. This is the per-period
  // zero-allocation invariant the ring-buffer histories, the flat engine
  // tables and the spill-block recycler exist for.
  {
    auto diet_cfg = runtime::ScenarioConfig::planetlab();
    diet_cfg.duration = seconds(12.0);
    diet_cfg.stream.duration = seconds(11.0);
    diet_cfg.lifting.history_retention = seconds(3.0);
    gossip::PlaybackConfig playback;
    playback.clear_threshold = 0.95;
    playback.warmup = seconds(2.0);
    runtime::Experiment steady(diet_cfg);
    steady.enable_streamed_health({2.0}, /*honest_only=*/true, playback,
                                  /*fold_interval=*/seconds(0.5));
    steady.run();   // first pass: every structure reaches its high water
    steady.reset(); // blocks return to the spill cache; replay re-takes them
    steady.enable_streamed_health({2.0}, /*honest_only=*/true, playback,
                                  /*fold_interval=*/seconds(0.5));
    steady.run_until(kSimEpoch + seconds(6.0));  // replayed warmup
    const auto steady_start = AllocSnapshot::now();
    steady.run_until(kSimEpoch + seconds(11.0));
    const auto steady_cost = AllocSnapshot::now().delta_since(steady_start);
    std::printf("\nsteady-state allocations (planetlab 300, memory diet, "
                "continuous run, sim t=6s -> 11s): %llu calls, %llu bytes\n",
                (unsigned long long)steady_cost.calls,
                (unsigned long long)steady_cost.bytes);
    if (steady_cost.calls != 0) {
      std::fprintf(stderr, "bench_sweep_scaling: steady-state window "
                   "performed %llu heap allocations (expected 0)\n",
                   (unsigned long long)steady_cost.calls);
      ++failures;
    }
  }

  return failures == 0 ? 0 : 1;
}

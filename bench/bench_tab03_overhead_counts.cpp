/// Table 3 / §6.1 — verification message counts per node per gossip
/// period, measured in the packet simulator and compared with the
/// complexity model:
///   direct cross-check:  O(p_dcc·f²) confirms for the verifier,
///                        O(p_dcc·f)  acks for the inspected node,
///   blames:              O(M·f) worst case.
///
/// Sweeps f and p_dcc on an honest deployment and prints measured
/// per-node-per-period counts next to the model's leading terms.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

struct CountRow {
  std::size_t fanout;
  double p_dcc;
  double acks;
  double confirm_reqs;
  double confirm_resps;
  double blames;
  double disseminations;
};

CountRow run(std::size_t fanout, double p_dcc) {
  auto cfg = lifting::runtime::ScenarioConfig::small(120);
  cfg.gossip.fanout = fanout;
  cfg.lifting.fanout = static_cast<std::uint32_t>(fanout);
  cfg.lifting.p_dcc = p_dcc;
  cfg.duration = lifting::seconds(20.0);
  cfg.stream.duration = lifting::seconds(18.0);
  cfg.stream.bitrate_bps = 320'000;
  cfg.stream.chunk_payload_bytes = 4'000;  // 10 chunks/s
  lifting::runtime::Experiment ex(cfg);
  ex.run();
  const auto& m = ex.metrics();
  const double node_periods =
      static_cast<double>(cfg.nodes) *
      (lifting::to_seconds(cfg.duration) /
       lifting::to_seconds(cfg.gossip.period));
  const auto per = [&](const char* kind) {
    return static_cast<double>(m.value(std::string("sent.") + kind +
                                       ".count")) /
           node_periods;
  };
  return CountRow{fanout,
                  p_dcc,
                  per("ack"),
                  per("confirm_req"),
                  per("confirm_resp"),
                  per("blame"),
                  per("propose") + per("request") + per("serve")};
}

}  // namespace

int main() {
  std::printf("=== Table 3: verification message counts per node per "
              "period ===\n");
  std::printf("(honest 120-node system, 10 chunks/s stream)\n\n");

  std::vector<std::pair<std::size_t, double>> grid{
      {4, 1.0}, {7, 1.0}, {10, 1.0}, {7, 0.5}, {7, 0.0}};
  std::vector<CountRow> rows(grid.size());
  {
    std::vector<std::jthread> workers;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      workers.emplace_back(
          [&, i] { rows[i] = run(grid[i].first, grid[i].second); });
    }
  }

  lifting::TextTable table({"f", "p_dcc", "acks", "confirms", "confirm "
                            "replies", "blames", "dissemination msgs"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.fanout),
                   lifting::TextTable::num(row.p_dcc, 1),
                   lifting::TextTable::num(row.acks, 2),
                   lifting::TextTable::num(row.confirm_reqs, 2),
                   lifting::TextTable::num(row.confirm_resps, 2),
                   lifting::TextTable::num(row.blames, 2),
                   lifting::TextTable::num(row.disseminations, 1)});
  }
  table.print();

  std::printf("\nexpected scaling: confirms ~ p_dcc·(servers/period)·f — "
              "watch them grow\nsuper-linearly in f and vanish at p_dcc=0; "
              "acks are independent of p_dcc\n(always sent); dissemination "
              "messages are f(2+|R|)-ish per §6.1.\n");
  return 0;
}

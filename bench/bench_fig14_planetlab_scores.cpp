/// Figure 14 — cumulative distribution of scores on the (simulated)
/// PlanetLab deployment at t = 25/30/35 s for p_dcc = 1 and p_dcc = 0.5.
///
/// Paper setup (§7.1): 300 nodes, 674 kbps, f = 7, Tg = 500 ms, M = 25
/// managers, 10% freeriders with Δ = (1/7, 0.1, 0.1); compensation uses the
/// observed ~4% loss. Landmarks: at 30 s with p_dcc = 1 and η = -9.75,
/// detection ≈ 86%, false positives ≈ 12% (weak honest nodes); p_dcc = 0.5
/// at 35 s is comparable to p_dcc = 1 at 30 s.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "runtime/experiment.hpp"
#include "stats/empirical.hpp"

namespace {

struct SnapshotRow {
  double at_seconds;
  double eta;
  lifting::runtime::DetectionStats detection;
  lifting::runtime::Experiment::ScoreSnapshot scores;
};

std::vector<SnapshotRow> run(double p_dcc) {
  auto cfg = lifting::runtime::ScenarioConfig::planetlab();
  cfg.lifting.p_dcc = p_dcc;
  cfg.duration = lifting::seconds(36.0);
  cfg.stream.duration = lifting::seconds(36.0);
  lifting::runtime::Experiment ex(cfg);
  std::vector<SnapshotRow> rows;
  for (const double t : {25.0, 30.0, 35.0}) {
    ex.run_until(lifting::kSimEpoch + lifting::seconds(t));
    rows.push_back(SnapshotRow{t, cfg.lifting.eta,
                               ex.detection_at(cfg.lifting.eta),
                               ex.snapshot_scores()});
  }
  return rows;
}

void print_cdfs(const std::vector<SnapshotRow>& rows, double p_dcc) {
  std::printf("\n--- p_dcc = %.1f ---\n", p_dcc);
  for (const auto& row : rows) {
    lifting::stats::Empirical honest(row.scores.honest);
    lifting::stats::Empirical cheats(row.scores.freeriders);
    std::printf("\nafter %.0f s: detection %.0f%%, false positives %.0f%% "
                "(eta = %.2f — the paper's -9.75 scaled to this "
                "deployment's activity)\n",
                row.at_seconds, row.detection.detection * 100,
                row.detection.false_positive * 100, row.eta);
    lifting::TextTable table({"score", "cdf honest", "cdf freeriders"});
    for (const double x :
         {-20.0, -10.0, -7.0, -5.0, row.eta, -2.0, -1.0, 0.0, 2.0}) {
      table.add_row({lifting::TextTable::num(x, 2),
                     lifting::TextTable::num(honest.cdf(x), 3),
                     lifting::TextTable::num(cheats.cdf(x), 3)});
    }
    table.print();
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 14: PlanetLab-like score CDFs (n=300, 10%% "
              "freeriders, delta=(1/7,0.1,0.1)) ===\n");

  std::vector<SnapshotRow> full;
  std::vector<SnapshotRow> half;
  {
    std::jthread t1([&] { full = run(1.0); });
    std::jthread t2([&] { half = run(0.5); });
  }
  print_cdfs(full, 1.0);
  print_cdfs(half, 0.5);

  std::printf("\npaper landmarks: p_dcc=1 @30s: ~86%% detection, ~12%% false "
              "positives (weak nodes);\np_dcc=0.5 @35s comparable to "
              "p_dcc=1 @30s (partial serves are caught without "
              "cross-checks).\n");
  return 0;
}

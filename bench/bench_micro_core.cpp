/// Micro-benchmarks of the substrate hot paths (google-benchmark):
/// event queue throughput, entropy computation, RNG sampling, the blame
/// sampler, and message size computation.
///
/// The JSON context carries `lifting_build_type` — the build type of THIS
/// binary (google-benchmark's own `library_build_type` describes the
/// packaged benchmark library, not our code). BENCH_baseline.json must
/// say `"lifting_build_type": "release"`; CI enforces it.

#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/sampler.hpp"
#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "gossip/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/entropy.hpp"

namespace {

using namespace lifting;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng{1};
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(kSimEpoch + microseconds(rng.below(1'000'000)), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_after(microseconds(10), [&] { tick(); });
    };
    sim.schedule_after(microseconds(1), [&] { tick(); });
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_ShannonEntropy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng{2};
  std::vector<std::uint64_t> counts(n);
  for (auto& c : counts) c = rng.below(20) + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::shannon_entropy(counts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShannonEntropy)->Arg(600)->Arg(10000);

void BM_MultisetEntropy(benchmark::State& state) {
  Pcg32 rng{3};
  std::vector<NodeId> multiset;
  for (int i = 0; i < 600; ++i) multiset.push_back(NodeId{rng.below(10000)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::multiset_entropy<NodeId>({multiset.data(), multiset.size()}));
  }
}
BENCHMARK(BM_MultisetEntropy);

void BM_SampleKDistinct(benchmark::State& state) {
  Pcg32 rng{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_k_distinct(rng, 10000, 12));
  }
}
BENCHMARK(BM_SampleKDistinct);

void BM_BlameSamplerHonestPeriod(benchmark::State& state) {
  const analysis::ProtocolModel model{0.07, 12, 4, 1.0};
  analysis::BlameSampler sampler(model);
  Pcg32 rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_honest(rng));
  }
}
BENCHMARK(BM_BlameSamplerHonestPeriod);

void BM_WireSizePropose(benchmark::State& state) {
  gossip::ProposeMsg msg;
  msg.period = 1;
  for (std::uint64_t i = 0; i < 10; ++i) msg.chunks.push_back(ChunkId{i});
  const gossip::Message m{msg};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::wire_size(m));
  }
}
BENCHMARK(BM_WireSizePropose);

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("lifting_build_type", lifting::build_type());
  benchmark::AddCustomContext("lifting_sanitizer", lifting::sanitizer_tag());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

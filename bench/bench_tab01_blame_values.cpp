/// Table 1 — attacks and their blame values, regenerated from the
/// implementation's own constants by driving the verifier state machines
/// through each attack and printing the blame each one yields.

#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "lifting/verifier.hpp"
#include "sim/simulator.hpp"

namespace {

struct Capture {
  double total = 0.0;
  lifting::BlameFn fn() {
    return [this](lifting::NodeId, double v, lifting::gossip::BlameReason) {
      total += v;
    };
  }
};

}  // namespace

int main() {
  using namespace lifting;

  LiftingParams params;
  params.fanout = 7;
  params.p_dcc = 1.0;
  const double f = 7.0;

  TextTable table({"attack", "paper blame", "measured"});

  // Fanout decrease: ack lists f̂ = 5 < f = 7 partners.
  {
    sim::Simulator sim;
    Capture cap;
    Pcg32 rng{1};
    CrossChecker cc(sim, params, NodeId{0}, rng, cap.fn(),
                    [](NodeId, gossip::Message) {});
    cc.on_chunks_served(NodeId{1}, 1, {ChunkId{1}});
    gossip::AckMsg ack{2, {ChunkId{1}},
                       {NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}, NodeId{6}}};
    cc.on_ack_received(NodeId{1}, ack);
    // All five witnesses testify "yes" so only the fanout blame remains.
    for (std::uint32_t w = 2; w <= 6; ++w) {
      cc.on_confirm_response(NodeId{w},
                             gossip::ConfirmRespMsg{NodeId{1}, 2, true});
    }
    sim.run();
    table.add_row({"fanout decrease (f^=5)", "f - f^ = 2",
                   TextTable::num(cap.total, 1)});
  }

  // Partial propose: one witness contradicts per invalid proposal.
  {
    sim::Simulator sim;
    Capture cap;
    Pcg32 rng{2};
    CrossChecker cc(sim, params, NodeId{0}, rng, cap.fn(),
                    [](NodeId, gossip::Message) {});
    cc.on_chunks_served(NodeId{1}, 1, {ChunkId{1}});
    gossip::AckMsg ack{2, {ChunkId{1}},
                       {NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}, NodeId{6},
                        NodeId{7}, NodeId{8}}};
    cc.on_ack_received(NodeId{1}, ack);
    for (std::uint32_t w = 2; w <= 8; ++w) {
      // Every witness contradicts: the proposal omitted the served chunks.
      cc.on_confirm_response(NodeId{w},
                             gossip::ConfirmRespMsg{NodeId{1}, 2, false});
    }
    sim.run();
    table.add_row({"partial propose (all 7 witnesses deny)",
                   "1 per verifier = 7", TextTable::num(cap.total, 1)});
  }

  // Partial serve: |S| = 1 of |R| = 4.
  {
    sim::Simulator sim;
    Capture cap;
    DirectVerifier dv(sim, params, cap.fn());
    dv.on_request_sent(NodeId{1}, 1,
                       {ChunkId{1}, ChunkId{2}, ChunkId{3}, ChunkId{4}});
    dv.on_serve_received(NodeId{1}, 1, ChunkId{1});
    sim.run();
    table.add_row({"partial serve (|S|=1, |R|=4)",
                   "f(|R|-|S|)/|R| = 5.25", TextTable::num(cap.total, 2)});
  }

  // No serve at all.
  {
    sim::Simulator sim;
    Capture cap;
    DirectVerifier dv(sim, params, cap.fn());
    dv.on_request_sent(NodeId{1}, 1, {ChunkId{1}, ChunkId{2}});
    sim.run();
    table.add_row({"no serve (|S|=0)", "f = 7", TextTable::num(cap.total, 1)});
  }

  // No acknowledgment after a serve.
  {
    sim::Simulator sim;
    Capture cap;
    Pcg32 rng{3};
    CrossChecker cc(sim, params, NodeId{0}, rng, cap.fn(),
                    [](NodeId, gossip::Message) {});
    cc.on_chunks_served(NodeId{1}, 1, {ChunkId{1}});
    sim.run();
    table.add_row({"no acknowledgment", "f = 7", TextTable::num(cap.total, 1)});
  }

  std::printf("=== Table 1: attacks and blame values (f = %.0f, |R| = 4) "
              "===\n\n", f);
  table.print();
  return 0;
}

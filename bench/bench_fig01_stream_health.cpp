/// Figure 1 — system efficiency in the presence of freeriders: fraction of
/// (honest) nodes viewing a clear stream vs stream lag, for
///   (a) no freeriders,
///   (b) 25% freeriders without LiFTinG (the system collapses),
///   (c) 25% freeriders with LiFTinG (stays close to the baseline).
///
/// The paper's freeriders are *wise* (§1): they "decrease their contribution
/// as much as possible while keeping the probability of being caught lower
/// than 50%". Without LiFTinG nothing can catch them, so they freeride
/// maximally (δ = 0.9) and the bandwidth-tight system collapses; with
/// LiFTinG active they restrain to δ ≈ 0.035 (the 50%-detection point of
/// Fig. 12) and the system stays near the baseline, with expulsion mopping
/// up whoever is caught regardless.
///
/// Packet-level simulation of the PlanetLab-like deployment: 300 nodes,
/// 674 kbps stream, f = 7, Tg = 500 ms.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

lifting::runtime::ScenarioConfig base_config() {
  auto cfg = lifting::runtime::ScenarioConfig::planetlab();
  cfg.duration = lifting::seconds(90.0);
  cfg.stream.duration = lifting::seconds(88.0);
  // Bandwidth-tight, heterogeneous uplinks as on 2009-era PlanetLab: the
  // baseline fits, but losing 25% of the push capacity to freeriders drives
  // the marginal capacity mass into queueing collapse — the effect Fig. 1
  // shows (calibrated by a capacity scan; see EXPERIMENTS.md).
  cfg.link.upload_capacity_bps = 2.2e6;
  cfg.weak_link.upload_capacity_bps = 1.2e6;
  cfg.weak_fraction = 0.35;
  return cfg;
}

lifting::gossip::PlaybackConfig playback_config() {
  lifting::gossip::PlaybackConfig playback;
  // "Clear" = 95% of chunks on time: the three-phase protocol has no
  // retransmission channel (the paper's system [6] repairs losses), so a
  // few percent of chunks never arrive even in a healthy system.
  playback.clear_threshold = 0.95;
  // Judge the steady state: with LiFTinG active the freeriders are expelled
  // within the first ~20 s and the eligible window must postdate that.
  playback.warmup = lifting::seconds(25.0);
  return playback;
}

struct RunResult {
  std::vector<lifting::gossip::HealthPoint> curve;
  std::size_t expelled_freeriders = 0;
  std::size_t expelled_honest = 0;
};

RunResult run(lifting::runtime::ScenarioConfig cfg,
              const std::vector<double>& lags) {
  lifting::runtime::Experiment ex(cfg);
  ex.run();
  RunResult result;
  result.curve = ex.health_curve(lags, /*honest_only=*/true,
                                 playback_config());
  for (const auto& rec : ex.expulsions()) {
    (rec.was_freerider ? result.expelled_freeriders
                       : result.expelled_honest)++;
  }
  return result;
}

}  // namespace

int main() {
  const std::vector<double> lags{1, 2, 3, 5, 8, 12, 20, 30};

  auto baseline_cfg = base_config();

  auto collapse_cfg = base_config();
  collapse_cfg.freerider_fraction = 0.25;
  // Nothing deters the freeriders in this arm, so they freeride hard.
  collapse_cfg.freerider_behavior =
      lifting::gossip::BehaviorSpec::freerider(0.9);
  collapse_cfg.lifting_enabled = false;

  auto protected_cfg = collapse_cfg;
  protected_cfg.lifting_enabled = true;
  // Deterrence: wise freeriders throttle to the 50%-detection operating
  // point once LiFTinG is active (Fig. 12: δ ≈ 0.035 at 10% gain). The
  // score/expulsion machinery itself is exercised by bench_fig14 and the
  // examples; here a third of the population is *legitimately* capacity-
  // starved, and expelling them (the paper would — §7.3) would conflate the
  // deterrence effect this figure isolates.
  protected_cfg.freerider_behavior =
      lifting::gossip::BehaviorSpec::freerider(0.035);
  protected_cfg.lifting.score_check_probability = 0.5;
  protected_cfg.lifting.min_periods_before_detection = 20;

  RunResult baseline;
  RunResult collapse;
  RunResult protected_run;
  {
    std::jthread t1([&] { baseline = run(baseline_cfg, lags); });
    std::jthread t2([&] { collapse = run(collapse_cfg, lags); });
    std::jthread t3([&] { protected_run = run(protected_cfg, lags); });
  }

  std::printf("=== Figure 1: fraction of honest nodes viewing a clear "
              "stream vs lag ===\n");
  std::printf("n=300, 674 kbps, f=7, Tg=500 ms; freeriders delta=0.9 (unchecked) vs 0.035 (deterred)\n\n");

  lifting::TextTable table({"lag (s)", "no freeriders", "25% freeriders",
                            "25% freeriders (LiFTinG)"});
  for (std::size_t i = 0; i < lags.size(); ++i) {
    table.add_row({lifting::TextTable::num(lags[i], 0),
                   lifting::TextTable::num(baseline.curve[i].fraction_clear, 3),
                   lifting::TextTable::num(collapse.curve[i].fraction_clear, 3),
                   lifting::TextTable::num(
                       protected_run.curve[i].fraction_clear, 3)});
  }
  table.print();

  std::printf("\nLiFTinG run expelled %zu freeriders and %zu honest nodes\n",
              protected_run.expelled_freeriders,
              protected_run.expelled_honest);
  std::printf("paper shape: without LiFTinG the curve collapses; with "
              "LiFTinG it tracks the baseline.\n");
  return 0;
}

/// Simulation-core scaling bench: the stream-health scenario (Fig. 1's
/// deployment shape — CBR stream, full LiFTinG verification stack, lossy
/// heterogeneous links) run at increasing population sizes.
///
/// The paper evaluates at PlanetLab scale (300 nodes); related gossip
/// systems evaluate at thousands to tens of thousands of peers. This bench
/// reports the simulator's raw throughput — events/sec and wall-clock per
/// simulated second — so substrate regressions show up as numbers, not
/// vibes, plus the memory columns the million-node rows are budgeted by:
/// heap high-water bytes per node (counting operator new, see
/// bench/alloc_tally.hpp) and process peak RSS. Larger populations run a
/// shorter simulated horizon to keep the bench's wall-clock budget
/// flat-ish across rows.
///
/// Rows above kDietNodes run the memory-diet configuration: streamed
/// health (Experiment::enable_streamed_health — delivery logs fold into
/// O(nodes) counters instead of retaining a stamp per chunk) and a
/// shortened lifting.history_retention (proposal rings keep the confirm
/// window, not the full 25 s audit window). Below the threshold the
/// classic retained configuration keeps rows comparable with earlier
/// logs; the streamed health value itself is bit-identical either way
/// (tests/test_streamed_health.cpp).
///
/// Usage: bench_scale_nodes [nodes...] [--json PATH]
///                          [--budget-bytes-per-node N]
///   default populations: 300 1000 5000 20000
///   --json writes the rows as JSON (the committed BENCH_memory.json)
///   --budget-bytes-per-node asserts every row's heap high-water per node
///   stays at or under N — exit 1 on a regression (the CI memory gate)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "alloc_tally.hpp"
#include "common/build_info.hpp"
#include "common/table.hpp"
#include "obs/registry.hpp"
#include "runtime/experiment.hpp"

namespace {

using namespace lifting;

/// Populations above this run the memory-diet configuration (streamed
/// health + shortened history retention). The classic rows (<= 20k) keep
/// the retained configuration so their events/s stay comparable across
/// bench logs.
constexpr std::uint32_t kDietNodes = 20000;

/// Fig. 1's deployment shape at population n: the 674 kbps stream, f = 7,
/// Tg = 500 ms, PlanetLab-like lossy links, a tail of weak nodes, and the
/// full verification machinery running (10% deterred freeriders).
runtime::ScenarioConfig stream_health_config(std::uint32_t n,
                                             double sim_seconds) {
  auto cfg = runtime::ScenarioConfig::planetlab();
  cfg.nodes = n;
  cfg.duration = seconds(sim_seconds);
  cfg.stream.duration = seconds(sim_seconds * 0.9);
  cfg.weak_fraction = 0.2;
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.035);
  if (n > kDietNodes) {
    // Proposal/receipt rings keep 6 periods (3 s at Tg = 500 ms) instead
    // of the 25 s audit window: enough for every confirm (window: 3
    // periods) and the cross-check lag, and the dominant per-node saving
    // at million scale.
    cfg.lifting.history_retention = seconds(3.0);
  }
  return cfg;
}

/// Simulated horizon per population: enough periods for the gossip mesh to
/// reach steady state, shrinking at the top end to bound bench wall-clock.
double horizon_seconds(std::uint32_t n) {
  if (n <= 1000) return 30.0;
  if (n <= 5000) return 15.0;
  if (n <= 50000) return 8.0;
  return 5.0;
}

struct Row {
  std::uint32_t nodes = 0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t datagrams = 0;
  double wall_seconds = 0.0;
  double health = 0.0;  // fraction of honest nodes clear at 5 s lag
  bool streamed = false;
  std::uint64_t heap_high_water = 0;  // peak live heap growth of the row
  std::uint64_t peak_rss_kb = 0;      // process-global, monotone
  /// Per-row unified metrics (obs::Registry, DESIGN.md §13): the folded
  /// deployment counters plus the scoped phase timers (phase.build /
  /// phase.run / phase.health gauges).
  obs::Registry metrics;
  [[nodiscard]] double bytes_per_node() const {
    return static_cast<double>(heap_high_water) / nodes;
  }
};

Row run(std::uint32_t n) {
  Row row;
  row.nodes = n;
  row.sim_seconds = horizon_seconds(n);
  row.streamed = n > kDietNodes;
  // Both ends of the judgeable window [warmup, horizon - lag] must sit
  // inside the shortest (5 s) horizon.
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  playback.warmup = seconds(2.0);
  const std::vector<double> lags{5.0 - (row.sim_seconds < 8.0 ? 2.5 : 0.0)};

  bench::reset_live_high_water();
  const auto mem_start = bench::AllocSnapshot::now();
  std::optional<runtime::Experiment> ex;
  {
    obs::ScopedTimer t(row.metrics, "phase.build");
    ex.emplace(stream_health_config(n, row.sim_seconds));
    if (row.streamed) {
      ex->enable_streamed_health(lags, /*honest_only=*/true, playback,
                                 /*fold_interval=*/seconds(1.0));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ScopedTimer t(row.metrics, "phase.run");
    ex->run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  row.events = ex->simulator().events_processed();
  row.datagrams = ex->network_stats().datagrams_sent;
  row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  {
    obs::ScopedTimer t(row.metrics, "phase.health");
    const auto curve = row.streamed
                           ? ex->streamed_health_curve()
                           : ex->health_curve(lags, /*honest_only=*/true,
                                              playback);
    row.health = curve.empty() ? 0.0 : curve.front().fraction_clear;
  }
  // Fold the deployment's full counter set into the row — the JSON rows
  // are self-describing without one accessor per counter family.
  ex->collect_metrics(row.metrics);
  // Peak live heap this row added (construction + run + health read), per
  // node — the budgeted number. RSS is sampled after, for the OS view.
  row.heap_high_water = bench::AllocSnapshot::now().high_water_since(mem_start);
  row.peak_rss_kb = bench::peak_rss_kb();
  return row;
}

void write_json(const char* path, const std::vector<Row>& rows,
                std::uint64_t budget) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale_nodes: cannot write %s\n", path);
    return;
  }
  // schema_version 2: rows carry the folded obs::Registry counters
  // ("metrics") and the scoped phase timers ("phase_seconds").
  std::fprintf(f,
               "{\n  \"bench\": \"bench_scale_nodes\",\n"
               "  \"schema_version\": 2,\n"
               "  \"build\": \"%s\",\n  \"sanitizer\": \"%s\",\n"
               "  \"budget_bytes_per_node\": %llu,\n  \"rows\": [\n",
               build_type(), sanitizer_tag(), (unsigned long long)budget);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"nodes\": %u, \"sim_seconds\": %.1f, \"events\": %llu, "
        "\"wall_seconds\": %.3f, \"events_per_second\": %.0f, "
        "\"health\": %.3f, \"streamed\": %s, "
        "\"heap_high_water_bytes\": %llu, \"bytes_per_node\": %.0f, "
        "\"peak_rss_kb\": %llu,\n     \"phase_seconds\": {",
        r.nodes, r.sim_seconds, (unsigned long long)r.events, r.wall_seconds,
        static_cast<double>(r.events) / r.wall_seconds, r.health,
        r.streamed ? "true" : "false", (unsigned long long)r.heap_high_water,
        r.bytes_per_node(), (unsigned long long)r.peak_rss_kb);
    bool first = true;
    for (const auto& e : r.metrics.entries()) {
      if (e.kind != obs::Registry::Kind::kGauge) continue;
      if (e.name.rfind("phase.", 0) != 0) continue;
      std::fprintf(f, "%s\"%s\": %.3f", first ? "" : ", ",
                   e.name.c_str() + 6, e.gauge);
      first = false;
    }
    std::fprintf(f, "},\n     \"metrics\": {");
    first = true;
    for (const auto& e : r.metrics.entries()) {
      if (e.kind != obs::Registry::Kind::kCounter) continue;
      std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", e.name.c_str(),
                   (unsigned long long)e.counter);
      first = false;
    }
    std::fprintf(f, "}}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> populations;
  const char* json_path = nullptr;
  std::uint64_t budget = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--budget-bytes-per-node") == 0 && i + 1 < argc) {
      budget = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || v < 3 || v > 10'000'000) {
      std::fprintf(stderr,
                   "bench_scale_nodes: '%s' is not a valid population "
                   "(expected an integer >= 3)\n",
                   argv[i]);
      return 2;
    }
    populations.push_back(static_cast<std::uint32_t>(v));
  }
  if (populations.empty()) populations = {300, 1000, 5000, 20000};

  std::printf("=== simulation-core scaling: stream-health scenario ===\n");
  // Self-describing header: saved bench logs must say what was measured.
  // Rows run serially on purpose (one sim per row, per-row wall timing);
  // hardware_threads records the machine the log came from.
  std::printf("build=%s sanitizer=%s threads=1 (serial rows) "
              "hardware_threads=%u\n",
              lifting::build_type(), lifting::sanitizer_tag(),
              std::thread::hardware_concurrency());
  std::printf(
      "674 kbps stream, f=7, Tg=500 ms, LiFTinG on, 10%% deterred "
      "freeriders, 20%% weak links\n"
      "rows > %u nodes: memory diet on (streamed health, 3 s history "
      "retention), health lag 2.5 s\n\n",
      kDietNodes);

  lifting::TextTable table({"nodes", "sim s", "events", "wall s", "events/s",
                            "wall s per sim s", "health", "bytes/node",
                            "peak RSS MB"});
  std::vector<Row> rows;
  int failures = 0;
  for (const auto n : populations) {
    const Row row = run(n);
    std::fprintf(stderr,
                 "[scale] n=%u: %llu events in %.2fs (%.0f ev/s, "
                 "%.0f B/node, rss %llu MB)\n",
                 row.nodes, (unsigned long long)row.events, row.wall_seconds,
                 static_cast<double>(row.events) / row.wall_seconds,
                 row.bytes_per_node(), (unsigned long long)(row.peak_rss_kb / 1024));
    table.add_row({lifting::TextTable::num(row.nodes, 0),
                   lifting::TextTable::num(row.sim_seconds, 0),
                   lifting::TextTable::num(static_cast<double>(row.events), 0),
                   lifting::TextTable::num(row.wall_seconds, 2),
                   lifting::TextTable::num(static_cast<double>(row.events) /
                                               row.wall_seconds,
                                           0),
                   lifting::TextTable::num(row.wall_seconds / row.sim_seconds,
                                           3),
                   lifting::TextTable::num(row.health, 3),
                   lifting::TextTable::num(row.bytes_per_node(), 0),
                   lifting::TextTable::num(
                       static_cast<double>(row.peak_rss_kb) / 1024.0, 0)});
    if (budget != 0 && row.bytes_per_node() > static_cast<double>(budget)) {
      std::fprintf(stderr,
                   "bench_scale_nodes: n=%u uses %.0f heap bytes/node, over "
                   "the %llu budget\n",
                   row.nodes, row.bytes_per_node(), (unsigned long long)budget);
      ++failures;
    }
    rows.push_back(row);
    std::fflush(stdout);
  }
  table.print();
  if (budget != 0) {
    std::printf("\nbytes/node budget: %llu — %s\n", (unsigned long long)budget,
                failures == 0 ? "all rows within budget" : "EXCEEDED");
  }
  if (json_path != nullptr) write_json(json_path, rows, budget);
  return failures == 0 ? 0 : 1;
}

/// Simulation-core scaling bench: the stream-health scenario (Fig. 1's
/// deployment shape — CBR stream, full LiFTinG verification stack, lossy
/// heterogeneous links) run at increasing population sizes.
///
/// The paper evaluates at PlanetLab scale (300 nodes); related gossip
/// systems evaluate at thousands to tens of thousands of peers. This bench
/// reports the simulator's raw throughput — events/sec and wall-clock per
/// simulated second — so substrate regressions show up as numbers, not
/// vibes. Larger populations run a shorter simulated horizon to keep the
/// bench's wall-clock budget flat-ish across rows.
///
/// Usage: bench_scale_nodes [nodes...]
///   default populations: 300 1000 5000 20000

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/build_info.hpp"
#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

using namespace lifting;

/// Fig. 1's deployment shape at population n: the 674 kbps stream, f = 7,
/// Tg = 500 ms, PlanetLab-like lossy links, a tail of weak nodes, and the
/// full verification machinery running (10% deterred freeriders).
runtime::ScenarioConfig stream_health_config(std::uint32_t n,
                                             double sim_seconds) {
  auto cfg = runtime::ScenarioConfig::planetlab();
  cfg.nodes = n;
  cfg.duration = seconds(sim_seconds);
  cfg.stream.duration = seconds(sim_seconds * 0.9);
  cfg.weak_fraction = 0.2;
  cfg.freerider_fraction = 0.10;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.035);
  return cfg;
}

/// Simulated horizon per population: enough periods for the gossip mesh to
/// reach steady state, shrinking at the top end to bound bench wall-clock.
double horizon_seconds(std::uint32_t n) {
  if (n <= 1000) return 30.0;
  if (n <= 5000) return 15.0;
  return 8.0;
}

struct Row {
  std::uint32_t nodes = 0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t datagrams = 0;
  double wall_seconds = 0.0;
  double health = 0.0;  // fraction of honest nodes clear at 5 s lag
};

Row run(std::uint32_t n) {
  Row row;
  row.nodes = n;
  row.sim_seconds = horizon_seconds(n);
  runtime::Experiment ex(stream_health_config(n, row.sim_seconds));
  const auto t0 = std::chrono::steady_clock::now();
  ex.run();
  const auto t1 = std::chrono::steady_clock::now();
  row.events = ex.simulator().events_processed();
  row.datagrams = ex.network_stats().datagrams_sent;
  row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  // Sanity column: the judgeable window is [warmup, horizon - lag], so keep
  // both ends well inside the shortest (8 s) horizon.
  gossip::PlaybackConfig playback;
  playback.clear_threshold = 0.95;
  playback.warmup = seconds(2.0);
  const auto curve = ex.health_curve({5.0}, /*honest_only=*/true, playback);
  row.health = curve.empty() ? 0.0 : curve.front().fraction_clear;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> populations;
  for (int i = 1; i < argc; ++i) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || v < 3 || v > 10'000'000) {
      std::fprintf(stderr,
                   "bench_scale_nodes: '%s' is not a valid population "
                   "(expected an integer >= 3)\n",
                   argv[i]);
      return 2;
    }
    populations.push_back(static_cast<std::uint32_t>(v));
  }
  if (populations.empty()) populations = {300, 1000, 5000, 20000};

  std::printf("=== simulation-core scaling: stream-health scenario ===\n");
  // Self-describing header: saved bench logs must say what was measured.
  // Rows run serially on purpose (one sim per row, per-row wall timing);
  // hardware_threads records the machine the log came from.
  std::printf("build=%s sanitizer=%s threads=1 (serial rows) "
              "hardware_threads=%u\n",
              lifting::build_type(), lifting::sanitizer_tag(),
              std::thread::hardware_concurrency());
  std::printf(
      "674 kbps stream, f=7, Tg=500 ms, LiFTinG on, 10%% deterred "
      "freeriders, 20%% weak links\n\n");

  lifting::TextTable table({"nodes", "sim s", "events", "wall s",
                            "events/s", "wall s per sim s", "health@5s"});
  for (const auto n : populations) {
    const Row row = run(n);
    std::fprintf(stderr, "[scale] n=%u: %llu events in %.2fs (%.0f ev/s)\n",
                 row.nodes, (unsigned long long)row.events, row.wall_seconds,
                 static_cast<double>(row.events) / row.wall_seconds);
    table.add_row({lifting::TextTable::num(row.nodes, 0),
                   lifting::TextTable::num(row.sim_seconds, 0),
                   lifting::TextTable::num(static_cast<double>(row.events), 0),
                   lifting::TextTable::num(row.wall_seconds, 2),
                   lifting::TextTable::num(static_cast<double>(row.events) /
                                               row.wall_seconds,
                                           0),
                   lifting::TextTable::num(row.wall_seconds / row.sim_seconds,
                                           3),
                   lifting::TextTable::num(row.health, 3)});
    std::fflush(stdout);
  }
  table.print();
  return 0;
}

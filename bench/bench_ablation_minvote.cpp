/// Ablation — the min-vote score read (§5.1): "In order to be resilient to
/// message losses and malicious attacks (i.e., colluding managers
/// increasing the scores), we use a minimum as voting function."
///
/// With a coalition of colluding freeriders, some of a freerider's M
/// managers belong to the coalition and answer inflated scores. The mean
/// vote gets dragged up by the liars; the min vote is pinned by any honest
/// manager. This bench runs the same deployment under both votes.

#include <cstdio>
#include <thread>

#include "common/table.hpp"
#include "runtime/experiment.hpp"

namespace {

lifting::runtime::DetectionStats run(lifting::LiftingParams::ScoreVote vote) {
  auto cfg = lifting::runtime::ScenarioConfig::planetlab();
  cfg.duration = lifting::seconds(35.0);
  cfg.stream.duration = lifting::seconds(35.0);
  cfg.freerider_fraction = 0.20;  // a larger coalition manages more of itself
  // Freeride harder than the PlanetLab Δ so the honest managers' copies are
  // clearly below η even after the coalition's withheld blames.
  cfg.freerider_behavior = lifting::gossip::BehaviorSpec::freerider(0.25);
  lifting::gossip::CollusionSpec collusion;
  collusion.cover_up = true;  // includes lying as witnesses and managers
  cfg.freerider_behavior.collusion = collusion;
  cfg.lifting.score_vote = vote;
  lifting::runtime::Experiment ex(cfg);
  ex.run();
  return ex.detection_at(cfg.lifting.eta);
}

}  // namespace

int main() {
  std::printf("=== Ablation: min-vote vs mean-vote score reads ===\n");
  std::printf("(PlanetLab preset, 20%% colluding freeriders whose members "
              "also lie as managers)\n\n");

  lifting::runtime::DetectionStats min_vote;
  lifting::runtime::DetectionStats mean_vote;
  {
    std::jthread t1(
        [&] { min_vote = run(lifting::LiftingParams::ScoreVote::kMin); });
    std::jthread t2(
        [&] { mean_vote = run(lifting::LiftingParams::ScoreVote::kMean); });
  }

  lifting::TextTable table({"vote", "detection", "false positives"});
  table.add_row({"min (paper)", lifting::TextTable::num(min_vote.detection, 3),
                 lifting::TextTable::num(min_vote.false_positive, 3)});
  table.add_row({"mean", lifting::TextTable::num(mean_vote.detection, 3),
                 lifting::TextTable::num(mean_vote.false_positive, 3)});
  table.print();

  std::printf("\nexpected: detection under the mean vote drops — coalition "
              "managers inflate\ntheir members' scores and the average "
              "absorbs the lie; the min vote needs\nonly one honest manager "
              "per freerider to hold the line.\n");
  return 0;
}

/// Figure 12 — proportion of freeriders detected and bandwidth gain as
/// functions of the degree of freeriding δ (δ1 = δ2 = δ3 = δ),
/// with η = -9.75 chosen for β < 1%.
///
/// Paper landmarks: α(0.05) ≈ 65%; α ≥ 99% beyond δ = 0.1; a freerider
/// gains 10% at δ = 0.035 where α ≈ 50%.
///
/// Runs the Monte-Carlo sweep on the ParallelRunner (one task per δ, each
/// with its own sampler and RNG stream derived from the task index, so the
/// table is identical at any --threads value).

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/runner.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace lifting;
  using namespace lifting::analysis;

  const ProtocolModel model{0.07, 12, 4, 1.0};
  const double eta = -9.75;
  const std::uint32_t r = 50;
  const std::uint32_t trials = 4000;

  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== Figure 12: detection vs degree of freeriding ===\n");
  std::printf("eta=%.2f, r=%u periods, %u Monte-Carlo nodes per point "
              "[build=%s threads=%u]\n\n",
              eta, r, trials, build_type(), runner.threads());

  const std::vector<double> deltas{0.00, 0.01, 0.02, 0.035, 0.05, 0.075,
                                   0.10, 0.125, 0.15, 0.175, 0.20};

  struct Row {
    double delta = 0.0;
    double gain = 0.0;
    double alpha_mc = 0.0;
    double beta_mc = 0.0;
    double alpha_bound = 0.0;
  };
  const auto rows = runner.map<Row>(deltas.size(), [&](std::size_t i) {
    const double delta = deltas[i];
    const auto d = FreeriderDegree::uniform(delta);
    BlameSampler sampler(model);
    Pcg32 rng = derive_rng(20120, i);
    const auto est = estimate_detection(sampler, d, eta, r, trials, rng);
    // Chebyshev lower bound using Monte-Carlo σ(b') (σ's closed form
    // for freeriders is deferred to [8] in the paper).
    stats::Summary per_period;
    for (int k = 0; k < 20000; ++k) {
      per_period.add(sampler.sample_period(rng, d));
    }
    const double excess = expected_blame_freerider(model, d) -
                          expected_wrongful_blame(model);
    return Row{delta, d.gain(), est.detection, est.false_positive,
               detection_bound(excess, per_period.stddev(), eta, r)};
  });

  TextTable table({"delta", "gain", "alpha (detection)", "alpha bound",
                   "beta (false pos.)"});
  for (const auto& row : rows) {
    table.add_row({TextTable::num(row.delta, 3), TextTable::num(row.gain, 3),
                   TextTable::num(row.alpha_mc, 3),
                   TextTable::num(row.alpha_bound, 3),
                   TextTable::num(row.beta_mc, 4)});
  }
  table.print();

  std::printf("\npaper landmarks: alpha(0.05)~0.65 | alpha(>=0.1)>0.99 | "
              "gain(0.035)~10%% with alpha~0.5 | beta<1%%\n");
  return 0;
}

/// Ablation — adaptive cross-checking (§1: "This overhead can be
/// dynamically adjusted and potentially reduced to zero when the system is
/// healthy"). The paper states the property without evaluating it; this
/// bench quantifies the trade-off:
///   * healthy system: adaptive p_dcc decays towards 0 and the verification
///     overhead approaches the ack-only floor (Table 5's p_dcc = 0 column);
///   * 10% freeriders: the working p_dcc snaps back up on suspicion, so
///     detection survives (slower, but far cheaper than always-on).

#include <cstdio>
#include <thread>

#include "common/table.hpp"
#include "runtime/experiment.hpp"
#include "stats/summary.hpp"

namespace {

struct Outcome {
  double overhead_ratio = 0.0;
  double detection = 0.0;
  double false_positive = 0.0;
  double mean_pdcc = 0.0;
};

Outcome run(bool adaptive, bool with_freeriders) {
  auto cfg = lifting::runtime::ScenarioConfig::planetlab();
  cfg.duration = lifting::seconds(40.0);
  cfg.stream.duration = lifting::seconds(40.0);
  if (!with_freeriders) cfg.freerider_fraction = 0.0;
  cfg.lifting.adaptive_pdcc = adaptive;
  cfg.lifting.adaptive_min_pdcc = 0.0;
  lifting::runtime::Experiment ex(cfg);
  ex.run();
  Outcome out;
  out.overhead_ratio = ex.overhead().verification_ratio();
  const auto det = ex.detection_at(cfg.lifting.eta);
  out.detection = det.detection;
  out.false_positive = det.false_positive;
  lifting::stats::Summary pdcc;
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    pdcc.add(ex.agent(lifting::NodeId{i}).current_pdcc());
  }
  out.mean_pdcc = pdcc.mean();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: adaptive p_dcc (PlanetLab preset, 40 s) ===\n\n");

  Outcome healthy_fixed;
  Outcome healthy_adaptive;
  Outcome cheats_fixed;
  Outcome cheats_adaptive;
  {
    std::jthread t1([&] { healthy_fixed = run(false, false); });
    std::jthread t2([&] { healthy_adaptive = run(true, false); });
    std::jthread t3([&] { cheats_fixed = run(false, true); });
    std::jthread t4([&] { cheats_adaptive = run(true, true); });
  }

  lifting::TextTable table({"scenario", "p_dcc policy", "final mean p_dcc",
                            "verif. overhead", "detection", "false pos."});
  const auto row = [&](const char* scen, const char* policy,
                       const Outcome& o, bool detection_applies) {
    table.add_row({scen, policy, lifting::TextTable::num(o.mean_pdcc, 2),
                   lifting::TextTable::num(o.overhead_ratio * 100, 2) + "%",
                   detection_applies ? lifting::TextTable::num(o.detection, 2)
                                     : std::string("n/a"),
                   lifting::TextTable::num(o.false_positive, 3)});
  };
  row("healthy", "fixed p_dcc=1", healthy_fixed, false);
  row("healthy", "adaptive", healthy_adaptive, false);
  row("10% freeriders", "fixed p_dcc=1", cheats_fixed, true);
  row("10% freeriders", "adaptive", cheats_adaptive, true);
  table.print();

  std::printf(
      "\nreading: adaptivity cuts the verification overhead substantially "
      "in a healthy\nsystem (toward Table 5's ack-only floor) at the cost "
      "of detection latency when\nfreeriders are present — with a reduced "
      "working p_dcc the per-period blame gap\nshrinks (cf. Fig. 14's "
      "p_dcc = 0.5 runs). The paper frames p_dcc as exactly this\noperator "
      "knob: \"never (p_dcc = 0) if the system is considered healthy\", "
      "cranked\nback up to purge (§5); the local controller automates the "
      "healthy-direction half\nand a purge remains an operator decision.\n");
  return 0;
}

/// Figure 10 — "Impact of message losses": distribution of compensated
/// scores after ONE gossip period across 10,000 honest nodes, with
/// p_l = 7%, f = 12, |R| = 4, p_dcc = 1.
///
/// Paper: scores compensated by b̃ = 72.95 center at ~0 (<0.01) with an
/// experimental standard deviation of 25.6.

#include <cmath>
#include <cstdio>

#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace lifting;
  using namespace lifting::analysis;

  const ProtocolModel model{0.07, 12, 4, 1.0};
  const double b_tilde = expected_wrongful_blame(model);
  const double sigma_model = std::sqrt(variance_wrongful_blame(model));

  std::printf("=== Figure 10: impact of message losses on honest scores ===\n");
  std::printf("n=10000 honest nodes, one gossip period, p_l=7%%, f=12, "
              "|R|=4, p_dcc=1\n\n");
  std::printf("compensation b~ (Eq. 5): %.2f   (paper: 72.95)\n", b_tilde);
  std::printf("model sigma(b):          %.2f   (paper observed: 25.6)\n\n",
              sigma_model);

  BlameSampler sampler(model);
  Pcg32 rng{20101};
  stats::Summary summary;
  stats::Histogram hist(-250.0, 50.0, 60);
  const int nodes = 10000;
  for (int i = 0; i < nodes; ++i) {
    // Score after one period: s = -(b - b̃).
    const double score = -(sampler.sample_honest(rng) - b_tilde);
    summary.add(score);
    hist.add(score);
  }

  std::printf("measured over %d sampled nodes:\n", nodes);
  std::printf("  mean score     %+8.3f   (paper: |mean| < 0.01... ~0)\n",
              summary.mean());
  std::printf("  std deviation  %8.3f   (paper: 25.6)\n", summary.stddev());
  std::printf("  range          [%.1f, %.1f]\n\n", summary.min(),
              summary.max());
  std::printf("score pdf (fraction of nodes per bin):\n%s\n",
              hist.render(48).c_str());
  return 0;
}

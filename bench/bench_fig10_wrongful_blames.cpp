/// Figure 10 — "Impact of message losses": distribution of compensated
/// scores after ONE gossip period across 10,000 honest nodes, with
/// p_l = 7%, f = 12, |R| = 4, p_dcc = 1.
///
/// Paper: scores compensated by b̃ = 72.95 center at ~0 (<0.01) with an
/// experimental standard deviation of 25.6.
///
/// The Monte-Carlo population is sharded into a fixed number of tasks on
/// the ParallelRunner — each task owns an RNG stream derived from its task
/// index and fills its own partial Summary/Histogram, and the partials are
/// merged in task order, so the printed numbers are identical at any
/// --threads value (including 1).

#include <cmath>
#include <cstdio>

#include "analysis/formulas.hpp"
#include "analysis/sampler.hpp"
#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/runner.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace lifting;
  using namespace lifting::analysis;

  const ProtocolModel model{0.07, 12, 4, 1.0};
  const double b_tilde = expected_wrongful_blame(model);
  const double sigma_model = std::sqrt(variance_wrongful_blame(model));

  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== Figure 10: impact of message losses on honest scores ===\n");
  std::printf("n=10000 honest nodes, one gossip period, p_l=7%%, f=12, "
              "|R|=4, p_dcc=1 [build=%s threads=%u]\n\n",
              build_type(), runner.threads());
  std::printf("compensation b~ (Eq. 5): %.2f   (paper: 72.95)\n", b_tilde);
  std::printf("model sigma(b):          %.2f   (paper observed: 25.6)\n\n",
              sigma_model);

  constexpr int kNodes = 10000;
  constexpr std::size_t kShards = 16;  // fixed: results don't follow threads
  struct Partial {
    stats::Summary summary;
    stats::Histogram hist{-250.0, 50.0, 60};
  };
  const auto partials = runner.map<Partial>(kShards, [&](std::size_t shard) {
    Partial p;
    BlameSampler sampler(model);
    Pcg32 rng = derive_rng(20101, shard);
    const auto slice = runtime::shard_range(shard, kShards, kNodes);
    for (std::size_t i = slice.lo; i < slice.hi; ++i) {
      // Score after one period: s = -(b - b̃).
      const double score = -(sampler.sample_honest(rng) - b_tilde);
      p.summary.add(score);
      p.hist.add(score);
    }
    return p;
  });

  stats::Summary summary;
  stats::Histogram hist(-250.0, 50.0, 60);
  for (const auto& p : partials) {  // task order: deterministic reduce
    summary.merge(p.summary);
    hist.merge(p.hist);
  }

  std::printf("measured over %d sampled nodes:\n", kNodes);
  std::printf("  mean score     %+8.3f   (paper: |mean| < 0.01... ~0)\n",
              summary.mean());
  std::printf("  std deviation  %8.3f   (paper: 25.6)\n", summary.stddev());
  std::printf("  range          [%.1f, %.1f]\n\n", summary.min(),
              summary.max());
  std::printf("score pdf (fraction of nodes per bin):\n%s\n",
              hist.render(48).c_str());
  return 0;
}

/// Graceful-degradation matrix — the robustness deliverable for the fault
/// subsystem (src/faults/): detection, wrongful blame, and delivery health
/// over fault intensity x audit-channel mode, on the same simulator
/// pipeline the deployment path shares (FaultInjector sits at the
/// net::Transport seam in both).
///
/// Fault intensity is a Gilbert-Elliott bursty-loss level (stationary loss
/// fraction; bursts of ~90% loss with mean length 4 datagrams — the same
/// parameterization tools/lifting_loopback.cpp uses for --burst-loss), so
/// a row here is directly comparable to a real-wire loopback run. The
/// audit-channel axis compares the paper's modeled-TCP entropy audits
/// (§5.3) against the reliable-UDP retry/backoff channel.
///
/// Determinism: the cell grid and rep count are fixed up front, per-rep
/// seeds come from derive_task_seed and are shared across cells (paired
/// comparisons), and reduction is task-ordered — every printed digit is
/// bit-identical at any --threads value. The bench re-verifies that claim
/// on a sample of tasks inline (exit 1 on divergence).
///
/// Usage: bench_fault_matrix [--threads N] [--reps N]

#include <cstdio>
#include <vector>

#include "common/build_info.hpp"
#include "common/table.hpp"
#include "faults/plan.hpp"
#include "runtime/experiment.hpp"
#include "runtime/runner.hpp"

namespace {

using namespace lifting;

struct Cell {
  double burst_loss;  ///< stationary loss fraction of the GE chain
  LiftingParams::AuditChannel channel;
};

/// One repetition's measurements. Every field is reduced bit-exactly
/// (task-ordered sums of identical doubles), so the aggregate is as
/// thread-count-invariant as the per-task values.
struct Sample {
  double detection = 0.0;
  double false_positive = 0.0;
  double stayer_blame = 0.0;
  double delivery = 0.0;  ///< delivered / (sent + injector-dropped)
  std::uint64_t faults_dropped = 0;
  std::uint64_t audit_sends = 0;
  std::uint64_t audit_retries = 0;
  std::uint64_t audit_give_ups = 0;
  std::uint64_t audit_acks = 0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

runtime::ScenarioConfig matrix_config(const Cell& cell, std::uint64_t seed) {
  auto cfg = runtime::ScenarioConfig::small(60);
  cfg.seed = seed;
  cfg.freerider_fraction = 0.15;
  cfg.freerider_behavior = gossip::BehaviorSpec::freerider(0.5);
  cfg.link.loss = 0.02;
  // Audits on for both channel modes, past the score-history warmup.
  cfg.lifting.audit_probability = 0.1;
  cfg.lifting.audit_warmup_periods = 10;
  cfg.lifting.audit_channel = cell.channel;
  if (cell.burst_loss > 0.0) {
    // Stationary loss pi_bad * loss_bad = burst_loss, mean burst 4
    // datagrams (p_bad_to_good = 0.25) — lifting_loopback's --burst-loss.
    constexpr double kLossBad = 0.9;
    constexpr double kBadToGood = 0.25;
    const double pi_bad = cell.burst_loss / kLossBad;
    cfg.faults.loss_bad = kLossBad;
    cfg.faults.p_bad_to_good = kBadToGood;
    cfg.faults.p_good_to_bad = pi_bad * kBadToGood / (1.0 - pi_bad);
  }
  return cfg;
}

Sample measure(runtime::Experiment& ex) {
  Sample s;
  const auto det = ex.detection_at(ex.config().lifting.eta);
  s.detection = det.detection;
  s.false_positive = det.false_positive;
  s.stayer_blame = ex.honest_blame_split().stayer_mean();
  // Injector drops happen above the network layer (the datagram never
  // reaches it), so the denominator must add them back to show the real
  // degradation.
  const auto& net = ex.network_stats();
  s.faults_dropped = ex.fault_stats().dropped();
  const double offered = static_cast<double>(net.datagrams_sent) +
                         static_cast<double>(s.faults_dropped);
  s.delivery = offered == 0.0
                   ? 0.0
                   : static_cast<double>(net.datagrams_delivered) / offered;
  const auto audit = ex.audit_channel_totals();
  s.audit_sends = audit.sends;
  s.audit_retries = audit.retries;
  s.audit_give_ups = audit.give_ups;
  s.audit_acks = audit.acks_received;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t reps =
      runtime::parse_flag(argc, argv, "--reps", 1, 1'000, 2);
  runtime::ParallelRunner runner(
      runtime::ParallelRunner::threads_from_args(argc, argv));

  std::printf("=== fault matrix: detection / wrongful blame / delivery "
              "health over burst loss x audit channel ===\n");
  std::printf("n=60, 20 s, delta=0.5, audits p=0.1, GE bursts ~4 datagrams, "
              "%u reps/cell [build=%s threads=%u]\n\n",
              reps, build_type(), runner.threads());

  const double intensities[] = {0.0, 0.05, 0.10, 0.20};
  const LiftingParams::AuditChannel channels[] = {
      LiftingParams::AuditChannel::kModeledTcp,
      LiftingParams::AuditChannel::kReliableUdp,
  };
  std::vector<Cell> cells;
  for (const double burst : intensities) {
    for (const auto channel : channels) cells.push_back({burst, channel});
  }

  const std::size_t tasks = cells.size() * reps;
  const auto samples =
      runner.map<Sample>(tasks, [&](std::size_t task) {
        const Cell& cell = cells[task / reps];
        runtime::Experiment ex(matrix_config(
            cell, runtime::derive_task_seed(0xFA27ULL,
                                            static_cast<std::uint64_t>(
                                                task % reps))));
        ex.run();
        return measure(ex);
      });

  // Thread-invariance self-check: recompute a sample of tasks inline (the
  // calling thread, no runner) — any scheduling dependence in the digest
  // would show up as a field mismatch.
  int failures = 0;
  for (const std::size_t task : {std::size_t{0}, tasks - 1}) {
    const Cell& cell = cells[task / reps];
    runtime::Experiment ex(matrix_config(
        cell, runtime::derive_task_seed(
                  0xFA27ULL, static_cast<std::uint64_t>(task % reps))));
    ex.run();
    if (!(measure(ex) == samples[task])) {
      std::fprintf(stderr,
                   "bench_fault_matrix: task %zu diverged from its inline "
                   "recomputation — the grid is NOT thread-invariant\n",
                   task);
      ++failures;
    }
  }

  TextTable table({"burst", "audit channel", "detection", "false pos",
                   "stayer blame", "delivery", "dropped", "audit sends",
                   "retries", "give-ups", "acks"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Sample mean;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const Sample& s = samples[i * reps + r];
      mean.detection += s.detection;
      mean.false_positive += s.false_positive;
      mean.stayer_blame += s.stayer_blame;
      mean.delivery += s.delivery;
      mean.faults_dropped += s.faults_dropped;
      mean.audit_sends += s.audit_sends;
      mean.audit_retries += s.audit_retries;
      mean.audit_give_ups += s.audit_give_ups;
      mean.audit_acks += s.audit_acks;
    }
    const double r = static_cast<double>(reps);
    table.add_row(
        {TextTable::num(cells[i].burst_loss, 2),
         cells[i].channel == LiftingParams::AuditChannel::kReliableUdp
             ? "reliable-udp"
             : "modeled-tcp",
         TextTable::num(mean.detection / r, 3),
         TextTable::num(mean.false_positive / r, 3),
         TextTable::num(mean.stayer_blame / r, 2),
         TextTable::num(mean.delivery / r, 3),
         TextTable::num(static_cast<double>(mean.faults_dropped) / r, 0),
         TextTable::num(static_cast<double>(mean.audit_sends) / r, 0),
         TextTable::num(static_cast<double>(mean.audit_retries) / r, 0),
         TextTable::num(static_cast<double>(mean.audit_give_ups) / r, 0),
         TextTable::num(static_cast<double>(mean.audit_acks) / r, 0)});
  }
  table.print();

  // Degradation sanity (report-only trends are printed above; these two
  // are structural and must hold for the matrix to mean anything): faults
  // actually fired at nonzero intensity, and the reliable channel actually
  // carried audits.
  std::uint64_t dropped_total = 0;
  std::uint64_t reliable_sends = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::uint32_t r = 0; r < reps; ++r) {
      const Sample& s = samples[i * reps + r];
      if (cells[i].burst_loss > 0.0) dropped_total += s.faults_dropped;
      if (cells[i].channel == LiftingParams::AuditChannel::kReliableUdp) {
        reliable_sends += s.audit_sends;
      }
    }
  }
  if (dropped_total == 0) {
    std::fprintf(stderr, "bench_fault_matrix: burst-loss cells dropped "
                 "nothing — the fault plan did not engage\n");
    ++failures;
  }
  if (reliable_sends == 0) {
    std::fprintf(stderr, "bench_fault_matrix: reliable-udp cells sent no "
                 "audits — the audit channel did not engage\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nthread-invariance self-check passed (%u threads); "
                "fault and audit channels engaged.\n",
                runner.threads());
  }
  return failures == 0 ? 0 : 1;
}
